#include "atc/atc.hpp"

#include <bit>
#include <cstring>
#include <filesystem>

#include "util/status.hpp"

namespace atc::core {

namespace {

constexpr char kMagic[4] = {'A', 'T', 'C', 'T'};
constexpr uint8_t kVersion = 1;

void
writeString(util::ByteSink &sink, const std::string &s)
{
    ATC_CHECK(s.size() < 256, "codec spec too long for INFO preamble");
    sink.writeByte(static_cast<uint8_t>(s.size()));
    sink.write(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

std::string
readString(util::ByteSource &src)
{
    uint8_t len;
    src.readExact(&len, 1);
    std::string s(len, '\0');
    src.readExact(reinterpret_cast<uint8_t *>(s.data()), len);
    return s;
}

void
writeRecord(util::ByteSink &sink, const IntervalRecord &rec)
{
    sink.writeByte(static_cast<uint8_t>(rec.kind));
    util::writeVarint(sink, rec.chunk_id);
    util::writeVarint(sink, rec.length);
    if (rec.kind == IntervalRecord::Kind::Imitate) {
        sink.writeByte(rec.trans.plane_mask);
        for (int j = 0; j < 8; ++j) {
            if (rec.trans.plane_mask & (1u << j))
                sink.write(rec.trans.t[j].data(), 256);
        }
    }
}

IntervalRecord
readRecord(util::ByteSource &src)
{
    IntervalRecord rec;
    uint8_t kind;
    src.readExact(&kind, 1);
    ATC_CHECK(kind <= 1, "corrupt interval record");
    rec.kind = static_cast<IntervalRecord::Kind>(kind);
    rec.chunk_id = static_cast<uint32_t>(util::readVarint(src));
    rec.length = util::readVarint(src);
    if (rec.kind == IntervalRecord::Kind::Imitate) {
        src.readExact(&rec.trans.plane_mask, 1);
        for (int j = 0; j < 8; ++j) {
            if (rec.trans.plane_mask & (1u << j))
                src.readExact(rec.trans.t[j].data(), 256);
        }
    }
    return rec;
}

/** @return the codec *name* of @p spec, for use as a file suffix. */
std::string
codecSuffix(const std::string &spec)
{
    auto parsed = comp::CodecSpec::parse(spec);
    if (!parsed.ok())
        util::raise(parsed.status().message());
    return parsed.value().name;
}

/**
 * Auto-detect the chunk-file suffix of a directory container by
 * globbing for `INFO.<suffix>`. With several candidates (containers
 * sharing a directory), the one whose INFO-recorded codec name matches
 * its own suffix wins.
 */
std::string
detectSuffix(const std::string &dir)
{
    namespace fs = std::filesystem;

    // Every filesystem call goes through the error_code overloads so a
    // racing delete or permission change surfaces as util::Error, not
    // as an fs::filesystem_error escaping the Status boundary.
    std::vector<std::string> suffixes;
    std::error_code ec;
    fs::directory_iterator it(dir, ec), end;
    ATC_CHECK(!ec, "cannot read trace directory " + dir);
    for (; it != end; it.increment(ec)) {
        std::error_code entry_ec;
        if (!it->is_regular_file(entry_ec) || entry_ec)
            continue;
        std::string fn = it->path().filename().string();
        if (fn.rfind("INFO.", 0) == 0 && fn.size() > 5)
            suffixes.push_back(fn.substr(5));
    }
    // An increment error ends the loop with ec set (it becomes end()).
    ATC_CHECK(!ec, "cannot read trace directory " + dir);
    ATC_CHECK(!suffixes.empty(),
              "no INFO.<suffix> file in " + dir +
                  " (not an ATC container?)");
    if (suffixes.size() == 1)
        return suffixes.front();

    std::vector<std::string> matching;
    for (const std::string &suffix : suffixes) {
        try {
            util::FileSource info(dir + "/INFO." + suffix);
            char magic[4];
            info.readExact(reinterpret_cast<uint8_t *>(magic), 4);
            if (std::memcmp(magic, kMagic, 4) != 0)
                continue;
            uint8_t skip[2]; // version, mode
            info.readExact(skip, 2);
            auto parsed = comp::CodecSpec::parse(readString(info));
            if (parsed.ok() && parsed.value().name == suffix)
                matching.push_back(suffix);
        } catch (const util::Error &) {
            // Unreadable candidate; keep looking.
        }
    }
    ATC_CHECK(!matching.empty(),
              "no readable ATC container among the INFO.* files in " +
                  dir);
    ATC_CHECK(matching.size() == 1,
              "ambiguous container: several INFO.* files in " + dir +
                  "; pass an explicit suffix");
    return matching.front();
}

} // namespace

AtcWriter::AtcWriter(ChunkStore &store, const AtcOptions &options)
    : store_(&store), options_(options),
      codec_(comp::makeCodec(options.pipeline.codec))
{
    // writeString's limit, enforced up front so a bad spec fails at
    // construction rather than after everything has been compressed.
    ATC_CHECK(codec_.spec.size() < 256,
              "codec spec too long for INFO preamble");
    options_.lossy.chunk_params = options_.pipeline;
    if (options_.mode == Mode::Lossless) {
        chunk_sink_ = store_->createChunk(0);
        lossless_ = std::make_unique<LosslessWriter>(options_.pipeline,
                                                     *chunk_sink_);
    } else {
        lossy_ = std::make_unique<LossyEncoder>(options_.lossy, *store_);
    }
}

AtcWriter::AtcWriter(const std::string &dir, const AtcOptions &options)
    : owned_store_(std::make_unique<DirectoryStore>(
          dir, codecSuffix(options.pipeline.codec))),
      store_(owned_store_.get()), options_(options),
      codec_(comp::makeCodec(options.pipeline.codec))
{
    ATC_CHECK(codec_.spec.size() < 256,
              "codec spec too long for INFO preamble");
    options_.lossy.chunk_params = options_.pipeline;
    if (options_.mode == Mode::Lossless) {
        chunk_sink_ = store_->createChunk(0);
        lossless_ = std::make_unique<LosslessWriter>(options_.pipeline,
                                                     *chunk_sink_);
    } else {
        lossy_ = std::make_unique<LossyEncoder>(options_.lossy, *store_);
    }
}

util::StatusOr<std::unique_ptr<AtcWriter>>
AtcWriter::open(ChunkStore &store, const AtcOptions &options)
{
    try {
        return std::make_unique<AtcWriter>(store, options);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

util::StatusOr<std::unique_ptr<AtcWriter>>
AtcWriter::open(const std::string &dir, const AtcOptions &options)
{
    try {
        return std::make_unique<AtcWriter>(dir, options);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

AtcWriter::~AtcWriter() = default;

void
AtcWriter::write(const uint64_t *vals, size_t n)
{
    ATC_ASSERT(!closed_);
    if (lossless_)
        lossless_->write(vals, n);
    else
        lossy_->write(vals, n);
    count_ += n;
}

const LossyStats &
AtcWriter::lossyStats() const
{
    ATC_CHECK(lossy_ != nullptr, "lossyStats requires lossy mode");
    return lossy_->stats();
}

void
AtcWriter::writeInfo()
{
    auto info = store_->createInfo();

    // Uncompressed preamble. The canonical codec spec is persisted so a
    // reader reconstructs the exact codec configuration on open.
    info->write(reinterpret_cast<const uint8_t *>(kMagic), 4);
    info->writeByte(kVersion);
    info->writeByte(static_cast<uint8_t>(options_.mode));
    writeString(*info, codec_.spec);

    // Compressed payload.
    comp::StreamCompressor payload(
        *codec_.codec, *info,
        codec_.blockOr(options_.pipeline.codec_block));
    // The mode is echoed inside the CRC-protected payload so that a
    // corrupted preamble cannot silently reinterpret the container.
    payload.writeByte(static_cast<uint8_t>(options_.mode));
    payload.writeByte(static_cast<uint8_t>(options_.pipeline.transform));
    util::writeVarint(payload, options_.pipeline.buffer_addrs);
    util::writeVarint(payload, count_);
    if (options_.mode == Mode::Lossy) {
        util::writeVarint(payload, options_.lossy.interval_len);
        util::writeLE<uint64_t>(payload,
                                std::bit_cast<uint64_t>(
                                    options_.lossy.epsilon));
        util::writeVarint(payload, lossy_->stats().chunks_created);
        util::writeVarint(payload, lossy_->records().size());
        for (const IntervalRecord &rec : lossy_->records())
            writeRecord(payload, rec);
    }
    payload.finish();
    info->flush();
}

void
AtcWriter::close()
{
    if (closed_)
        return;
    if (lossless_) {
        lossless_->finish();
        chunk_sink_->flush();
    } else {
        lossy_->finish();
    }
    writeInfo();
    closed_ = true;
}

util::Status
AtcWriter::tryClose()
{
    try {
        close();
        return util::Status();
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

AtcReader::AtcReader(ChunkStore &store, size_t decoder_cache)
    : store_(&store)
{
    openContainer(decoder_cache);
}

AtcReader::AtcReader(const std::string &dir, size_t decoder_cache)
    : owned_store_(
          std::make_unique<DirectoryStore>(dir, detectSuffix(dir))),
      store_(owned_store_.get())
{
    openContainer(decoder_cache);
}

AtcReader::AtcReader(const std::string &dir, const std::string &suffix,
                     size_t decoder_cache)
    : owned_store_(std::make_unique<DirectoryStore>(dir, suffix)),
      store_(owned_store_.get())
{
    openContainer(decoder_cache);
}

util::StatusOr<std::unique_ptr<AtcReader>>
AtcReader::open(ChunkStore &store, size_t decoder_cache)
{
    try {
        return std::make_unique<AtcReader>(store, decoder_cache);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

util::StatusOr<std::unique_ptr<AtcReader>>
AtcReader::open(const std::string &dir, size_t decoder_cache)
{
    try {
        return std::make_unique<AtcReader>(dir, decoder_cache);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

AtcReader::~AtcReader() = default;

void
AtcReader::openContainer(size_t decoder_cache)
{
    auto info = store_->openInfo();

    char magic[4];
    info->readExact(reinterpret_cast<uint8_t *>(magic), 4);
    ATC_CHECK(std::memcmp(magic, kMagic, 4) == 0, "not an ATC container");
    uint8_t version;
    info->readExact(&version, 1);
    ATC_CHECK(version == kVersion, "unsupported ATC container version");
    uint8_t mode;
    info->readExact(&mode, 1);
    ATC_CHECK(mode <= 1, "corrupt ATC container mode");
    mode_ = static_cast<Mode>(mode);
    codec_spec_ = readString(*info);

    auto cc = comp::CodecRegistry::instance().create(codec_spec_);
    if (!cc.ok())
        util::raise("cannot reconstruct container codec: " +
                    cc.status().message());
    comp::ConfiguredCodec codec = cc.take();

    comp::StreamDecompressor payload(*codec.codec, *info);
    uint8_t mode_echo;
    payload.readExact(&mode_echo, 1);
    ATC_CHECK(mode_echo == mode,
              "ATC container mode mismatch (corrupt preamble)");
    uint8_t transform;
    payload.readExact(&transform, 1);
    ATC_CHECK(transform <= 3, "corrupt ATC transform id");

    LosslessParams pipeline;
    pipeline.transform = static_cast<Transform>(transform);
    pipeline.buffer_addrs =
        static_cast<size_t>(util::readVarint(payload));
    pipeline.codec = codec.spec;
    count_ = util::readVarint(payload);

    if (mode_ == Mode::Lossless) {
        chunk_src_ = store_->openChunk(0);
        lossless_ = std::make_unique<LosslessReader>(pipeline, *chunk_src_);
        return;
    }

    LossyParams params;
    params.chunk_params = pipeline;
    params.decoder_cache = decoder_cache;
    params.interval_len = util::readVarint(payload);
    params.epsilon =
        std::bit_cast<double>(util::readLE<uint64_t>(payload));
    uint64_t chunk_count = util::readVarint(payload);
    uint64_t record_count = util::readVarint(payload);
    std::vector<IntervalRecord> records;
    records.reserve(record_count);
    for (uint64_t i = 0; i < record_count; ++i) {
        records.push_back(readRecord(payload));
        ATC_CHECK(records.back().chunk_id < chunk_count,
                  "interval record references unknown chunk");
    }
    lossy_ = std::make_unique<LossyDecoder>(params, *store_,
                                            std::move(records));
}

size_t
AtcReader::read(uint64_t *out, size_t n)
{
    size_t got = lossless_ ? lossless_->read(out, n)
                           : lossy_->read(out, n);
    delivered_ += got;
    return got;
}

util::StatusOr<size_t>
AtcReader::tryRead(uint64_t *out, size_t n)
{
    try {
        return read(out, n);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

} // namespace atc::core
