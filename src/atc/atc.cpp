#include "atc/atc.hpp"

#include "atc/info.hpp"
#include "util/status.hpp"

namespace atc::core {

AtcWriter::AtcWriter(ChunkStore &store, const AtcOptions &options)
    : store_(&store), options_(options),
      codec_(comp::makeCodec(options.pipeline.codec))
{
    // writeContainerInfo's limit, enforced up front so a bad spec fails
    // at construction rather than after everything has been compressed.
    ATC_CHECK(codec_.spec.size() < 256,
              "codec spec too long for INFO preamble");
    applyContainerVersion(options_.container_version, options_.pipeline);
    options_.lossy.chunk_params = options_.pipeline;
    if (options_.mode == Mode::Lossless) {
        chunk_sink_ = store_->createChunk(0);
        lossless_ = std::make_unique<LosslessWriter>(options_.pipeline,
                                                     *chunk_sink_);
    } else {
        lossy_ = std::make_unique<LossyEncoder>(options_.lossy, *store_);
    }
}

AtcWriter::AtcWriter(const std::string &dir, const AtcOptions &options)
    : owned_store_(std::make_unique<DirectoryStore>(
          dir, containerSuffix(options.pipeline.codec))),
      store_(owned_store_.get()), options_(options),
      codec_(comp::makeCodec(options.pipeline.codec))
{
    ATC_CHECK(codec_.spec.size() < 256,
              "codec spec too long for INFO preamble");
    applyContainerVersion(options_.container_version, options_.pipeline);
    options_.lossy.chunk_params = options_.pipeline;
    if (options_.mode == Mode::Lossless) {
        chunk_sink_ = store_->createChunk(0);
        lossless_ = std::make_unique<LosslessWriter>(options_.pipeline,
                                                     *chunk_sink_);
    } else {
        lossy_ = std::make_unique<LossyEncoder>(options_.lossy, *store_);
    }
}

util::StatusOr<std::unique_ptr<AtcWriter>>
AtcWriter::open(ChunkStore &store, const AtcOptions &options)
{
    try {
        return std::make_unique<AtcWriter>(store, options);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

util::StatusOr<std::unique_ptr<AtcWriter>>
AtcWriter::open(const std::string &dir, const AtcOptions &options)
{
    try {
        return std::make_unique<AtcWriter>(dir, options);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

AtcWriter::~AtcWriter() = default;

void
AtcWriter::write(const uint64_t *vals, size_t n)
{
    ATC_ASSERT(!closed_);
    if (lossless_)
        lossless_->write(vals, n);
    else
        lossy_->write(vals, n);
    count_ += n;
}

const LossyStats &
AtcWriter::lossyStats() const
{
    ATC_CHECK(lossy_ != nullptr, "lossyStats requires lossy mode");
    return lossy_->stats();
}

void
AtcWriter::writeInfo()
{
    if (options_.mode == Mode::Lossless) {
        writeContainerInfo(*store_, codec_, options_.container_version,
                           options_.mode, options_.pipeline, count_,
                           nullptr, 0, nullptr);
    } else {
        writeContainerInfo(*store_, codec_, options_.container_version,
                           options_.mode, options_.pipeline, count_,
                           &options_.lossy,
                           lossy_->stats().chunks_created,
                           &lossy_->records());
    }
}

void
AtcWriter::close()
{
    if (closed_)
        return;
    if (lossless_) {
        lossless_->finish();
        chunk_sink_->flush();
    } else {
        lossy_->finish();
    }
    writeInfo();
    closed_ = true;
}

util::Status
AtcWriter::tryClose()
{
    try {
        close();
        return util::Status();
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

namespace {

IndexOptions
indexOptions(size_t cache_bytes)
{
    IndexOptions iopt;
    iopt.cache_bytes = cache_bytes;
    return iopt;
}

} // namespace

AtcReader::AtcReader(ChunkStore &store, size_t cache_bytes)
    : index_(AtcIndex::openOrThrow(store, indexOptions(cache_bytes))),
      cursor_(index_->cursor())
{
}

AtcReader::AtcReader(const std::string &dir, size_t cache_bytes)
    : index_(AtcIndex::openOrThrow(
          std::make_unique<DirectoryStore>(dir,
                                           detectContainerSuffix(dir)),
          indexOptions(cache_bytes))),
      cursor_(index_->cursor())
{
}

AtcReader::AtcReader(const std::string &dir, const std::string &suffix,
                     size_t cache_bytes)
    : index_(AtcIndex::openOrThrow(
          std::make_unique<DirectoryStore>(dir, suffix),
          indexOptions(cache_bytes))),
      cursor_(index_->cursor())
{
}

util::StatusOr<std::unique_ptr<AtcReader>>
AtcReader::open(ChunkStore &store, size_t cache_bytes)
{
    try {
        return std::make_unique<AtcReader>(store, cache_bytes);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

util::StatusOr<std::unique_ptr<AtcReader>>
AtcReader::open(const std::string &dir, size_t cache_bytes)
{
    try {
        return std::make_unique<AtcReader>(dir, cache_bytes);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

AtcReader::~AtcReader() = default;

size_t
AtcReader::read(uint64_t *out, size_t n)
{
    // Sequential decode is a cursor that starts at record 0 and never
    // seeks; the cursor also enforces the truncation check (a clean
    // end before the INFO-recorded count fails loudly).
    return cursor_->read(out, n);
}

util::StatusOr<size_t>
AtcReader::tryRead(uint64_t *out, size_t n)
{
    try {
        return read(out, n);
    } catch (const util::Error &e) {
        return util::Status::error(e.what());
    }
}

} // namespace atc::core
