/**
 * @file
 * Lossy phase-based trace compression (paper §5.2).
 *
 * The trace is cut into intervals of L addresses. The first interval
 * always becomes a chunk (losslessly compressed with bytesort). Each
 * later interval is compared, via the sorted-byte-histogram distance,
 * against the signatures of recent chunks held in a bounded histogram
 * table (oldest chunk evicted when full). If the nearest chunk is
 * within epsilon, the interval is recorded as an *imitation* of that
 * chunk plus byte translations; otherwise it becomes a new chunk.
 *
 * The encoder produces chunks (into a ChunkStore) and an interval
 * record list; INFO serialization lives with the top-level AtcWriter.
 * The decoder regenerates the address stream from chunks + records,
 * reading decompressed chunks through a BlockCache — either a shared
 * one (an AtcIndex's, so every cursor over the container reuses one
 * working set) or a private instance.
 */

#ifndef ATC_ATC_LOSSY_HPP_
#define ATC_ATC_LOSSY_HPP_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "atc/block_cache.hpp"
#include "atc/container.hpp"
#include "atc/histogram.hpp"
#include "atc/lossless.hpp"

namespace atc::core {

/** Parameters of the lossy scheme. */
struct LossyParams
{
    /** Interval length L in addresses (paper: 10M). */
    uint64_t interval_len = 10'000'000;
    /** Similarity threshold epsilon (paper: 0.1). */
    double epsilon = 0.1;
    /** Histogram-table capacity in chunks (oldest evicted). */
    size_t chunk_table = 256;
    /** Disable to reproduce Figure 4's ablation. */
    bool translate = true;
    /** Byte budget of the decoder's decompressed-chunk cache (used
     *  only when the decoder owns its cache — decoders sharing an
     *  AtcIndex cache ignore it). Bytes-bounded, not chunk-counted:
     *  at paper scale one chunk is interval_len * 8 = 80 MB, so a
     *  count-based knob made the footprint workload-dependent. */
    size_t decoder_cache_bytes = kDefaultDecodedCacheBytes;
    /** Per-chunk lossless pipeline (paper: bytesort, B = 1M). */
    LosslessParams chunk_params;
};

/** One entry of the interval trace. */
struct IntervalRecord
{
    enum class Kind : uint8_t
    {
        Chunk = 0,   ///< interval stored losslessly as chunk chunk_id
        Imitate = 1, ///< interval imitates chunk chunk_id
    };

    Kind kind = Kind::Chunk;
    uint32_t chunk_id = 0;
    uint64_t length = 0;
    /** Valid for Kind::Imitate. */
    ByteTranslation trans;
};

/** Encoder-side counters. */
struct LossyStats
{
    uint64_t addresses = 0;
    uint64_t intervals = 0;
    uint64_t chunks_created = 0;
    uint64_t imitated = 0;
};

/** Single-pass lossy compressor. */
class LossyEncoder
{
  public:
    /**
     * Receives each interval that becomes a chunk, instead of the
     * built-in compress-into-the-store path. The payload is moved out
     * of the encoder; ids are dense and increasing. This is the seam
     * the parallel driver uses to offload chunk compression.
     */
    using ChunkFn =
        std::function<void(uint32_t id, std::vector<uint64_t> payload)>;

    /**
     * @param params scheme parameters
     * @param store  chunk destination (must outlive the encoder)
     * @param chunk_fn optional override for chunk emission; when set,
     *        the encoder never touches @p store itself
     */
    LossyEncoder(const LossyParams &params, ChunkStore &store,
                 ChunkFn chunk_fn = nullptr);

    /** Feed a batch of addresses — the primary entry point. */
    void write(const uint64_t *addrs, size_t n);

    /** Feed one address. */
    void code(uint64_t addr) { write(&addr, 1); }

    /**
     * The signature stage of processing an interval, exposed so the
     * parallel writer can run it on pool workers: pure and
     * order-independent (histograms of the payload only), while the
     * decision stage below stays order-dependent (it walks the chunk
     * table). Timed under lossy.signature_us wherever it runs.
     */
    static IntervalSignature signatureOf(const uint64_t *addrs, size_t n);

    /**
     * Feed one whole interval whose signature was already computed
     * (via signatureOf) — the order-preserving reassembly entry the
     * parallel writer drains pooled signatures into, in submission
     * order. Byte-identical to write()-ing the same addresses: the
     * decision, records, and chunk emission follow the same code path.
     * Only the final interval before finish() may be shorter than
     * interval_len, and calls must not be mixed with buffered write()
     * leftovers (an unaligned mix would change interval boundaries).
     */
    void writeInterval(std::vector<uint64_t> payload,
                       const IntervalSignature &sig);

    /** Flush the final (possibly partial) interval. */
    void finish();

    /** @return counters (valid after finish()). */
    const LossyStats &stats() const { return stats_; }

    /** @return the interval trace (valid after finish()). */
    const std::vector<IntervalRecord> &records() const { return records_; }

  private:
    void processInterval();
    void applyInterval(const IntervalSignature &sig);
    void emitChunk(const IntervalSignature &sig);

    struct TableEntry
    {
        uint32_t chunk_id;
        IntervalSignature sig;
    };

    LossyParams params_;
    ChunkStore &store_;
    ChunkFn chunk_fn_;
    std::vector<uint64_t> buffer_;
    std::deque<TableEntry> table_;
    std::vector<IntervalRecord> records_;
    LossyStats stats_;
    bool finished_ = false;
};

/**
 * Decompress chunk @p id of @p store in full through the per-chunk
 * lossless pipeline of @p params. The one whole-chunk decode used by
 * every lossy consumer (LossyDecoder, the cursor's pooled readRange
 * prefetch, the parallel reader), so they reject corrupt chunks
 * identically. Thread-safe for concurrent calls (openChunk must be —
 * see ChunkStore).
 */
std::vector<uint64_t> decodeChunkPayload(const LosslessParams &params,
                                         ChunkStore &store, uint32_t id);

/** Streaming regenerator for lossy traces. */
class LossyDecoder
{
  public:
    /** Cache of decompressed chunks, keyed by chunk id. */
    using ChunkCache = BlockCache<uint64_t>;

    /**
     * @param params  parameters used at encode time (chunk pipeline,
     *                decoder cache budget)
     * @param store   chunk source (must outlive the decoder)
     * @param records interval trace parsed from INFO
     * @param cache   shared decompressed-chunk cache (e.g. an
     *                AtcIndex's; must outlive the decoder); when null
     *                the decoder owns a private cache bounded by
     *                params.decoder_cache_bytes
     */
    LossyDecoder(const LossyParams &params, ChunkStore &store,
                 std::vector<IntervalRecord> records,
                 ChunkCache *cache = nullptr);

    /**
     * Borrowing variant for shared, read-only interval traces (e.g.
     * the records held by an AtcIndex): @p records must outlive the
     * decoder. Imitation translations can run to 2 KiB per record, so
     * cursors sharing one index must not copy the trace per cursor.
     */
    LossyDecoder(const LossyParams &params, ChunkStore &store,
                 const std::vector<IntervalRecord> *records,
                 ChunkCache *cache = nullptr);

    // records_ may point at the sibling owned_records_, so the
    // compiler-generated copy/move would leave the copy dangling.
    LossyDecoder(const LossyDecoder &) = delete;
    LossyDecoder &operator=(const LossyDecoder &) = delete;

    /**
     * Produce up to @p n regenerated addresses — the primary entry.
     * @return addresses produced; 0 means end of trace
     */
    size_t read(uint64_t *out, size_t n);

    /**
     * Produce the next regenerated address.
     * @return false at end of trace
     */
    bool decode(uint64_t *out) { return read(out, 1) == 1; }

    /**
     * Reposition so the next read() starts at the beginning of
     * interval record @p record_idx (== records().size() positions at
     * end of trace). The decompressed-chunk cache is kept — seeking
     * around a working set of imitated intervals stays cheap.
     */
    void seekRecord(size_t record_idx);

    /** @return the interval trace driving this decoder. */
    const std::vector<IntervalRecord> &records() const { return *records_; }

  private:
    /** Load (through the cache) decompressed chunk @p id; the result
     *  stays pinned in current_chunk_ until the next load. */
    const std::vector<uint64_t> &loadChunk(uint32_t id);
    bool nextInterval();

    LossyParams params_;
    ChunkStore &store_;
    std::vector<IntervalRecord> owned_records_;
    const std::vector<IntervalRecord> *records_;
    size_t record_idx_ = 0;

    // Decompressed-chunk cache: the shared one when provided, else an
    // owned private instance. current_chunk_ pins the active chunk so
    // eviction (by this decoder or a sibling sharing the cache) never
    // pulls it out from under an in-flight interval.
    std::unique_ptr<ChunkCache> owned_cache_;
    ChunkCache *cache_;
    ChunkCache::Ptr current_chunk_;
    uint32_t current_id_ = 0;

    std::vector<uint64_t> interval_;
    size_t pos_ = 0;
};

} // namespace atc::core

#endif // ATC_ATC_LOSSY_HPP_
