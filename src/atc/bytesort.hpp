/**
 * @file
 * The bytesort reversible transformation (paper §4) and the plain
 * byte-unshuffling baseline.
 *
 * For a buffer of N 64-bit addresses, eight blocks of N bytes are
 * emitted, most-significant plane first. Unshuffling alone emits each
 * plane in original sequence order. Bytesort additionally stable-sorts
 * the addresses by the plane just emitted before extracting the next
 * one, progressively grouping addresses by memory region — the
 * regularity a byte-level compressor then exploits. Both transforms
 * are exactly reversible and linear in time and space.
 *
 * Streaming framing: the trace is cut into buffers of at most B
 * addresses; each buffer is emitted as varint(n) followed by its 8
 * planes; a 0 varint (or end of stream) terminates.
 */

#ifndef ATC_ATC_BYTESORT_HPP_
#define ATC_ATC_BYTESORT_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bytestream.hpp"

namespace atc::core {

/** Reversible per-buffer transform applied before byte compression. */
enum class Transform : uint8_t
{
    /** Raw little-endian bytes, no rearrangement. */
    None = 0,
    /** Byte-unshuffling: planes in sequence order (§4.1 baseline). */
    Unshuffle = 1,
    /** Full bytesort: planes with progressive stable sorting (§4.1). */
    Bytesort = 2,
    /**
     * Mache-style differencing (Samples [23], discussed in §3):
     * successive-address deltas, byte-unshuffled. Exploits spatial
     * locality; provided as a related-work baseline for ablations.
     */
    Delta = 3,
};

/** Buffer-level forward bytesort: 8*n bytes, MSB plane first. */
std::vector<uint8_t> bytesortForward(const uint64_t *addrs, size_t n);

/** Buffer-level inverse bytesort. @p bytes must hold 8*n bytes. */
std::vector<uint64_t> bytesortInverse(const uint8_t *bytes, size_t n);

/** Buffer-level byte-unshuffling (no sorting). */
std::vector<uint8_t> unshuffleForward(const uint64_t *addrs, size_t n);

/** Inverse of unshuffleForward. */
std::vector<uint64_t> unshuffleInverse(const uint8_t *bytes, size_t n);

/**
 * Streaming encoder: buffers addresses and emits framed, transformed
 * buffers into a byte sink (typically a StreamCompressor).
 */
class TransformEncoder
{
  public:
    /**
     * @param transform    transform applied to each buffer
     * @param buffer_addrs buffer capacity B in addresses (paper: 1M/10M)
     * @param out          destination byte sink
     */
    TransformEncoder(Transform transform, size_t buffer_addrs,
                     util::ByteSink &out);

    /** Append a batch of addresses — the primary (hot-path) entry. */
    void write(const uint64_t *addrs, size_t n);

    /** Append one address. */
    void code(uint64_t addr) { write(&addr, 1); }

    /** Emit the final partial buffer and the terminator. */
    void finish();

    /** @return addresses coded so far. */
    uint64_t count() const { return count_; }

  private:
    void emitBuffer();

    Transform transform_;
    size_t capacity_;
    util::ByteSink &out_;
    std::vector<uint64_t> buffer_;
    uint64_t count_ = 0;
    bool finished_ = false;
};

/** Streaming decoder for TransformEncoder output. */
class TransformDecoder
{
  public:
    /**
     * @param transform transform used when encoding
     * @param in        source byte stream
     */
    TransformDecoder(Transform transform, util::ByteSource &in);

    /**
     * Produce up to @p n addresses — the primary (hot-path) entry.
     * @return addresses produced; 0 means end of trace
     */
    size_t read(uint64_t *out, size_t n);

    /**
     * Produce the next address.
     * @param out receives the address
     * @return false at end of trace
     */
    bool decode(uint64_t *out) { return read(out, 1) == 1; }

  private:
    bool refill();

    Transform transform_;
    util::ByteSource &in_;
    std::vector<uint64_t> buffer_;
    size_t pos_ = 0;
    bool done_ = false;
};

} // namespace atc::core

#endif // ATC_ATC_BYTESORT_HPP_
