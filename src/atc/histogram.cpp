#include "atc/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/status.hpp"

namespace atc::core {

IntervalHistograms
computeHistograms(const uint64_t *addrs, size_t n)
{
    // Two accumulator sets, merged at the end: consecutive addresses
    // sharing byte values serialize on the same counter slot (a
    // store-to-load forwarding chain); splitting even/odd addresses
    // across disjoint tables keeps two independent increment chains in
    // flight. ~24 KiB of tables stays L1-resident.
    IntervalHistograms out;
    out.len = n;
    std::array<ByteHistogram, 8> alt{};
    size_t i = 0;
    for (; i + 1 < n; i += 2) {
        uint64_t a = addrs[i];
        uint64_t b = addrs[i + 1];
        for (int j = 0; j < 8; ++j) {
            out.h[j][(a >> (8 * j)) & 0xFF]++;
            alt[j][(b >> (8 * j)) & 0xFF]++;
        }
    }
    if (i < n) {
        uint64_t a = addrs[i];
        for (int j = 0; j < 8; ++j)
            out.h[j][(a >> (8 * j)) & 0xFF]++;
    }
    for (int j = 0; j < 8; ++j) {
        for (int v = 0; v < 256; ++v)
            out.h[j][v] += alt[j][v];
    }
    return out;
}

BytePermutation
sortPermutation(const ByteHistogram &h)
{
    std::array<uint16_t, 256> order;
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint16_t a, uint16_t b) { return h[a] > h[b]; });
    BytePermutation p;
    for (int i = 0; i < 256; ++i)
        p[i] = static_cast<uint8_t>(order[i]);
    return p;
}

double
histogramDistance(const ByteHistogram &a, uint64_t la,
                  const ByteHistogram &b, uint64_t lb)
{
    ATC_ASSERT(la > 0 && lb > 0);
    double d = 0.0;
    for (int i = 0; i < 256; ++i) {
        d += std::abs(static_cast<double>(a[i]) / la -
                      static_cast<double>(b[i]) / lb);
    }
    return d;
}

IntervalSignature
IntervalSignature::from(IntervalHistograms hist)
{
    IntervalSignature sig;
    sig.hist = std::move(hist);
    for (int j = 0; j < 8; ++j) {
        sig.perm[j] = sortPermutation(sig.hist.h[j]);
        for (int i = 0; i < 256; ++i)
            sig.sorted[j][i] = sig.hist.h[j][sig.perm[j][i]];
    }
    return sig;
}

double
signatureDistance(const IntervalSignature &a, const IntervalSignature &b)
{
    double dmax = 0.0;
    for (int j = 0; j < 8; ++j) {
        double d = histogramDistance(a.sorted[j], a.hist.len, b.sorted[j],
                                     b.hist.len);
        dmax = std::max(dmax, d);
    }
    return dmax;
}

ByteTranslation
makeTranslation(const IntervalSignature &source,
                const IntervalSignature &target, double epsilon)
{
    ByteTranslation trans;
    for (int j = 0; j < 8; ++j) {
        double d = histogramDistance(source.hist.h[j], source.hist.len,
                                     target.hist.h[j], target.hist.len);
        if (d <= epsilon)
            continue; // plane already matches; leave bytes unchanged
        trans.plane_mask |= static_cast<uint8_t>(1u << j);
        for (int i = 0; i < 256; ++i)
            trans.t[j][source.perm[j][i]] = target.perm[j][i];
    }
    return trans;
}

} // namespace atc::core
