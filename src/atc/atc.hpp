/**
 * @file
 * Top-level ATC compressor API (paper §6).
 *
 * Mirrors the original C interface: atc_open('c'|'k') + atc_code +
 * atc_close becomes AtcWriter (Mode::Lossless | Mode::Lossy); atc_open
 * ('d') + atc_decode becomes AtcReader, which auto-detects the mode
 * from the INFO stream. Traces live in a ChunkStore — typically a
 * directory of `<n>.<suffix>` chunk files plus `INFO.<suffix>`,
 * exactly like the original tool's output (Figure 8).
 *
 * INFO layout: an uncompressed preamble (magic, version, mode, codec
 * name) followed by a codec-compressed payload holding the pipeline
 * parameters, the address count and — in lossy mode — the interval
 * trace (chunk/imitate records with byte translations).
 */

#ifndef ATC_ATC_ATC_HPP_
#define ATC_ATC_ATC_HPP_

#include <memory>
#include <string>

#include "atc/container.hpp"
#include "atc/lossless.hpp"
#include "atc/lossy.hpp"

namespace atc::core {

/** Compression mode ('c' vs 'k' in the original tool). */
enum class Mode : uint8_t
{
    Lossless = 0,
    Lossy = 1,
};

/** Options accepted by AtcWriter. */
struct AtcOptions
{
    Mode mode = Mode::Lossy;
    /** Transform + codec pipeline: the whole stream in lossless mode,
     *  each chunk in lossy mode. */
    LosslessParams pipeline;
    /** Lossy-mode parameters (chunk_params is overridden by pipeline). */
    LossyParams lossy;
};

/** Compressing side of the ATC container. */
class AtcWriter
{
  public:
    /**
     * Write into an existing store.
     * @param store destination; must outlive the writer
     * @param options mode and parameters
     */
    AtcWriter(ChunkStore &store, const AtcOptions &options);

    /**
     * Write into a directory (created if needed), using the codec name
     * as the file suffix — the original tool's layout.
     */
    AtcWriter(const std::string &dir, const AtcOptions &options);

    ~AtcWriter();

    AtcWriter(const AtcWriter &) = delete;
    AtcWriter &operator=(const AtcWriter &) = delete;

    /** Compress one 64-bit value (atc_code). */
    void code(uint64_t value);

    /** Finalize the container, writing INFO (atc_close). */
    void close();

    /** @return values coded so far. */
    uint64_t count() const { return count_; }

    /** @return lossy counters; valid after close() in lossy mode. */
    const LossyStats &lossyStats() const;

  private:
    void writeInfo();

    std::unique_ptr<ChunkStore> owned_store_;
    ChunkStore *store_;
    AtcOptions options_;
    uint64_t count_ = 0;
    bool closed_ = false;

    // Lossless mode state.
    std::unique_ptr<util::ByteSink> chunk_sink_;
    std::unique_ptr<LosslessWriter> lossless_;

    // Lossy mode state.
    std::unique_ptr<LossyEncoder> lossy_;
};

/** Decompressing side; mode is auto-detected from INFO. */
class AtcReader
{
  public:
    /**
     * Read from an existing store.
     * @param store source; must outlive the reader
     * @param decoder_cache decompressed chunks cached in lossy mode
     */
    explicit AtcReader(ChunkStore &store, size_t decoder_cache = 8);

    /**
     * Read from a directory container.
     * @param dir    directory written by AtcWriter
     * @param suffix chunk-file suffix (the codec name by default)
     */
    explicit AtcReader(const std::string &dir,
                       const std::string &suffix = "bwc",
                       size_t decoder_cache = 8);

    ~AtcReader();

    AtcReader(const AtcReader &) = delete;
    AtcReader &operator=(const AtcReader &) = delete;

    /**
     * Decompress the next value (atc_decode).
     * @return false at end of trace
     */
    bool decode(uint64_t *out);

    /** @return the container's compression mode. */
    Mode mode() const { return mode_; }

    /** @return total values in the trace, from INFO. */
    uint64_t count() const { return count_; }

  private:
    void openContainer(size_t decoder_cache);

    std::unique_ptr<ChunkStore> owned_store_;
    ChunkStore *store_;
    Mode mode_ = Mode::Lossless;
    uint64_t count_ = 0;
    uint64_t delivered_ = 0;

    // Keep the INFO/chunk sources alive while streaming.
    std::unique_ptr<util::ByteSource> chunk_src_;
    std::unique_ptr<LosslessReader> lossless_;
    std::unique_ptr<LossyDecoder> lossy_;
};

} // namespace atc::core

#endif // ATC_ATC_ATC_HPP_
