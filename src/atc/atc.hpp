/**
 * @file
 * Top-level ATC compressor API (paper §6).
 *
 * Mirrors the original C interface: atc_open('c'|'k') + atc_code +
 * atc_close becomes AtcWriter (Mode::Lossless | Mode::Lossy); atc_open
 * ('d') + atc_decode becomes AtcReader, which auto-detects the mode
 * from the INFO stream. Traces live in a ChunkStore — typically a
 * directory of `<n>.<suffix>` chunk files plus `INFO.<suffix>`,
 * exactly like the original tool's output (Figure 8).
 *
 * The API is batch-first: write(vals, n) / read(out, n) are the hot
 * paths; code()/decode() are thin single-value wrappers kept for parity
 * with atc_code/atc_decode. Both classes speak the composable trace
 * pipeline interfaces (trace::TraceSink / trace::TraceSource), so a
 * compressor slots directly behind a generator or cache-filter stage.
 *
 * Failures while opening or reading a container (missing files,
 * corrupt INFO, truncated chunks) surface as util::Status/StatusOr via
 * the open()/tryRead()/tryClose() entry points; the constructors and
 * hot-path calls throw util::Error instead. ATC_ASSERT stays reserved
 * for internal invariants.
 *
 * INFO layout: an uncompressed preamble (magic, version, mode, codec
 * spec) followed by a codec-compressed payload holding the pipeline
 * parameters, the address count and — in lossy mode — the interval
 * trace (chunk/imitate records with byte translations).
 */

#ifndef ATC_ATC_ATC_HPP_
#define ATC_ATC_ATC_HPP_

#include <memory>
#include <string>

#include "atc/container.hpp"
#include "atc/index.hpp"
#include "atc/info.hpp"
#include "atc/lossless.hpp"
#include "atc/lossy.hpp"
#include "compress/codec.hpp"
#include "trace/pipeline.hpp"
#include "util/status.hpp"

namespace atc::core {

// Mode (the 'c' vs 'k' distinction) lives in atc/info.hpp with the rest
// of the container wire format.

/** Options accepted by AtcWriter. */
struct AtcOptions
{
    Mode mode = Mode::Lossy;
    /** Transform + codec pipeline: the whole stream in lossless mode,
     *  each chunk in lossy mode. The codec field is a registry spec,
     *  e.g. "bwc", "lzh", "bwc:block=900k". */
    LosslessParams pipeline;
    /** Lossy-mode parameters (chunk_params is overridden by pipeline). */
    LossyParams lossy;
    /** Container format version to write. v3 (the default) uses
     *  seekable chunk framing enabling block-parallel decode; v2/v1
     *  reproduce the older layouts for downgrade-compatible output.
     *  The pipeline's frame_format/crc_trailer knobs are derived from
     *  this at construction. Readers auto-detect the version. */
    uint8_t container_version = kContainerVersion;
};

/** Compressing side of the ATC container. */
class AtcWriter : public trace::TraceSink
{
  public:
    /**
     * Write into an existing store.
     * @param store destination; must outlive the writer
     * @param options mode and parameters
     * @throws util::Error on a malformed or unknown codec spec
     */
    AtcWriter(ChunkStore &store, const AtcOptions &options);

    /**
     * Write into a directory (created if needed), using the codec
     * *name* (never the full spec) as the file suffix — the original
     * tool's layout.
     * @throws util::Error on a bad codec spec or uncreatable directory
     */
    AtcWriter(const std::string &dir, const AtcOptions &options);

    /** Non-throwing constructor wrapper. */
    static util::StatusOr<std::unique_ptr<AtcWriter>> open(
        ChunkStore &store, const AtcOptions &options);

    /** Non-throwing constructor wrapper (directory layout). */
    static util::StatusOr<std::unique_ptr<AtcWriter>> open(
        const std::string &dir, const AtcOptions &options);

    ~AtcWriter() override;

    AtcWriter(const AtcWriter &) = delete;
    AtcWriter &operator=(const AtcWriter &) = delete;

    /** Compress a batch of values — the primary entry point. */
    void write(const uint64_t *vals, size_t n) override;

    /** Compress one 64-bit value (atc_code). */
    void code(uint64_t value) { write(&value, 1); }

    /** Finalize the container, writing INFO (atc_close). */
    void close() override;

    /** close(), reporting I/O failures as a Status instead of throwing. */
    util::Status tryClose();

    /** @return values coded so far. */
    uint64_t count() const { return count_; }

    /** @return lossy counters; valid after close() in lossy mode. */
    const LossyStats &lossyStats() const;

  private:
    void writeInfo();

    std::unique_ptr<ChunkStore> owned_store_;
    ChunkStore *store_;
    AtcOptions options_;
    comp::ConfiguredCodec codec_;
    uint64_t count_ = 0;
    bool closed_ = false;

    // Lossless mode state.
    std::unique_ptr<util::ByteSink> chunk_sink_;
    std::unique_ptr<LosslessWriter> lossless_;

    // Lossy mode state.
    std::unique_ptr<LossyEncoder> lossy_;
};

/**
 * Decompressing side; mode is auto-detected from INFO.
 *
 * Since the random-access redesign this is a thin driver over the
 * cursor internals: opening a reader opens a shared AtcIndex and reads
 * through one AtcCursor positioned at record 0, so sequential decode
 * and random access share one code path. index() exposes the snapshot
 * for sharing; cursor() mints additional independent read positions
 * over the same open container.
 */
class AtcReader : public trace::TraceSource
{
  public:
    /**
     * Read from an existing store.
     * @param store source; must outlive the reader AND anything still
     *        holding the reader's index() or cursors minted from it
     *        (directory-opened readers have no such caveat: their
     *        index owns the store)
     * @param cache_bytes budget of the index's shared decoded-block
     *        cache (decoded frames in lossless v3, decompressed chunks
     *        in lossy mode; 0 disables it) — see IndexOptions
     * @throws util::Error on missing/corrupt INFO
     */
    explicit AtcReader(ChunkStore &store,
                       size_t cache_bytes = kDefaultDecodedCacheBytes);

    /**
     * Read from a directory container, auto-detecting the chunk-file
     * suffix from the `INFO.<suffix>` file present in the directory.
     * The underlying store is owned by the index, so index()/cursor()
     * results stay valid after the reader is gone.
     * @throws util::Error when no INFO file is found or INFO is corrupt
     */
    explicit AtcReader(const std::string &dir,
                       size_t cache_bytes = kDefaultDecodedCacheBytes);

    /**
     * Read from a directory container with an explicit suffix (only
     * needed when several containers share one directory).
     */
    AtcReader(const std::string &dir, const std::string &suffix,
              size_t cache_bytes = kDefaultDecodedCacheBytes);

    /** Non-throwing constructor wrapper. */
    static util::StatusOr<std::unique_ptr<AtcReader>> open(
        ChunkStore &store,
        size_t cache_bytes = kDefaultDecodedCacheBytes);

    /** Non-throwing constructor wrapper (directory, auto-detect). */
    static util::StatusOr<std::unique_ptr<AtcReader>> open(
        const std::string &dir,
        size_t cache_bytes = kDefaultDecodedCacheBytes);

    ~AtcReader() override;

    AtcReader(const AtcReader &) = delete;
    AtcReader &operator=(const AtcReader &) = delete;

    /**
     * Decompress up to @p n values — the primary entry point.
     * @return values produced; 0 means end of trace
     * @throws util::Error on truncated/corrupt chunk data
     */
    size_t read(uint64_t *out, size_t n) override;

    /** read(), reporting corruption as a Status instead of throwing. */
    util::StatusOr<size_t> tryRead(uint64_t *out, size_t n);

    /**
     * Decompress the next value (atc_decode).
     * @return false at end of trace
     */
    bool decode(uint64_t *out) { return read(out, 1) == 1; }

    /** @return the container's compression mode. */
    Mode mode() const { return index_->mode(); }

    /** @return the codec spec recorded in INFO. */
    const std::string &codecSpec() const
    {
        return index_->info().codec_spec;
    }

    /** @return total values in the trace, from INFO. */
    uint64_t count() const { return index_->size(); }

    /** @return the container format version recorded in INFO. */
    uint8_t containerVersion() const { return index_->version(); }

    /** @return the shared seek-metadata snapshot of this container. */
    const std::shared_ptr<const AtcIndex> &index() const
    {
        return index_;
    }

    /**
     * Mint an independent seekable cursor over the same container.
     * Cursors share the (immutable) index but hold private decode
     * state; see index.hpp for the thread-safety rules.
     */
    std::unique_ptr<AtcCursor> cursor() const
    {
        return index_->cursor();
    }

  private:
    std::shared_ptr<const AtcIndex> index_;
    std::unique_ptr<AtcCursor> cursor_;
};

} // namespace atc::core

#endif // ATC_ATC_ATC_HPP_
