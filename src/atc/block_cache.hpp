/**
 * @file
 * Shared decoded-block cache for the random-access read path.
 *
 * Re-decoding a whole codec block (~256 KiB) dominated every seek, and
 * each lossy cursor kept a private decompressed-chunk cache — so two
 * cursors over one container decoded the same working set twice.
 * BlockCache is the shared substrate fixing both: one instance hangs
 * off an AtcIndex and every AtcCursor minted from it reads through it.
 * Lossless v3 cursors cache decoded frames keyed by (chunk, frame);
 * lossy cursors cache decoded chunks keyed by chunk id. The budget is
 * in *bytes* (the old knob counted chunks, which made the footprint
 * proportional to interval_len — 80 MiB per entry at paper scale).
 *
 * Concurrency: the key space is sharded by hash; each shard holds its
 * own mutex, map and intrusive LRU list, so cursors on different
 * threads contend only when they touch the same shard. Values are
 * immutable vectors handed out as shared_ptr — eviction never
 * invalidates a block a reader is still holding.
 *
 * Sizing semantics: a shard over budget evicts from the cold end but
 * keeps its most-recently-used entry, so a budget between one block
 * and the working-set size degrades to a small per-shard cache
 * instead of thrashing to nothing. The keep-newest exception is
 * bounded by the *aggregate* budget: a block larger than the entire
 * budget is never retained, and a shard may hold an over-its-share
 * newest entry only while the cache as a whole still fits (N shards
 * must not pin N over-budget blocks — at paper scale one lossy chunk
 * is 80 MB). Total residency therefore never exceeds capacity plus
 * one block. A budget of 0 disables the cache entirely (get always
 * misses, put stores nothing — it just wraps the block so callers
 * are oblivious). Shard count trades contention against budget
 * fragmentation: many small blocks (frames) want more shards, few
 * large blocks (chunks) fewer.
 */

#ifndef ATC_ATC_BLOCK_CACHE_HPP_
#define ATC_ATC_BLOCK_CACHE_HPP_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace atc::core {

namespace detail {

// Process-wide cache counters on the obs registry, aggregated over
// every BlockCache instance (both element types). Per-instance
// figures remain available through stats().
struct CacheObsMetrics {
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &insertions;
    obs::Counter &evictions;
};

inline CacheObsMetrics &
cacheObsMetrics()
{
    auto &r = obs::Registry::global();
    static CacheObsMetrics m{
        r.counter("cache.hits"),
        r.counter("cache.misses"),
        r.counter("cache.insertions"),
        r.counter("cache.evictions"),
    };
    return m;
}

}  // namespace detail

/** Default budget of the shared decoded-block cache (see AtcIndex):
 *  large enough to retain a few paper-scale lossy chunks (80 MB at
 *  interval_len = 10M), far below the old count-based default's
 *  worst-case footprint (8 chunks regardless of size). */
constexpr size_t kDefaultDecodedCacheBytes = size_t(256) << 20;

/** Aggregate counters of a BlockCache, summed over its shards. */
struct BlockCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    /** Current footprint (payload bytes) and resident entry count. */
    size_t bytes = 0;
    size_t entries = 0;
};

/** Concurrency-safe sharded LRU cache of decoded blocks (see the file
 *  comment). @p T is the element type of the cached vectors: uint8_t
 *  for decoded codec frames, uint64_t for decoded lossy chunks. */
template <typename T>
class BlockCache
{
  public:
    using Block = std::vector<T>;
    using Ptr = std::shared_ptr<const Block>;

    /**
     * @param capacity_bytes payload budget summed over all shards;
     *        0 disables caching
     * @param shards lock-striping width (clamped to >= 1)
     */
    explicit BlockCache(size_t capacity_bytes, size_t shards = 8)
        : capacity_(capacity_bytes),
          shards_(capacity_bytes == 0 ? 1 : (shards == 0 ? 1 : shards))
    {
        shard_capacity_ = capacity_ / shards_.size();
    }

    BlockCache(const BlockCache &) = delete;
    BlockCache &operator=(const BlockCache &) = delete;

    /** Compose the key of frame @p frame of chunk @p chunk_id. */
    static constexpr uint64_t
    frameKey(uint32_t chunk_id, uint64_t frame)
    {
        return (static_cast<uint64_t>(chunk_id) << 32) | frame;
    }

    /** @return the cached block for @p key, refreshed to
     *  most-recently-used, or nullptr on a miss. */
    Ptr
    get(uint64_t key)
    {
        if (capacity_ == 0)
            return nullptr;
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            ++shard.misses;
            detail::cacheObsMetrics().misses.inc();
            return nullptr;
        }
        ++shard.hits;
        detail::cacheObsMetrics().hits.inc();
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return it->second->block;
    }

    /**
     * Insert @p block under @p key and return the resident entry. When
     * @p key is already cached (another cursor decoded it first) the
     * existing block wins and @p block is dropped — both are decodes
     * of the same immutable frame. With the cache disabled the block
     * is wrapped and returned without being stored.
     */
    Ptr
    put(uint64_t key, Block block)
    {
        size_t bytes = block.size() * sizeof(T);
        Ptr ptr = std::make_shared<const Block>(std::move(block));
        // Disabled, or a block larger than the entire budget: hand it
        // back unstored (see the file comment on sizing semantics).
        if (capacity_ == 0 || bytes > capacity_)
            return ptr;
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            return it->second->block;
        }
        shard.lru.push_front(Entry{key, std::move(ptr), bytes});
        shard.map.emplace(key, shard.lru.begin());
        shard.bytes += bytes;
        total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        ++shard.insertions;
        detail::cacheObsMetrics().insertions.inc();
        // Evict cold entries, but never the one just inserted: a
        // shard budget below one block still caches its hot block.
        while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
            Entry &victim = shard.lru.back();
            shard.bytes -= victim.bytes;
            total_bytes_.fetch_sub(victim.bytes,
                                   std::memory_order_relaxed);
            shard.map.erase(victim.key);
            shard.lru.pop_back();
            ++shard.evictions;
            detail::cacheObsMetrics().evictions.inc();
        }
        // The keep-newest exception holds only while the cache as a
        // whole still fits: when this shard is over its share AND the
        // aggregate is over budget, the new entry is handed back
        // unstored rather than pinned (see the file comment).
        if (shard.bytes > shard_capacity_ &&
            total_bytes_.load(std::memory_order_relaxed) > capacity_) {
            Entry &front = shard.lru.front();
            Ptr keep = std::move(front.block);
            shard.bytes -= front.bytes;
            total_bytes_.fetch_sub(front.bytes,
                                   std::memory_order_relaxed);
            shard.map.erase(front.key);
            shard.lru.pop_front();
            ++shard.evictions;
            detail::cacheObsMetrics().evictions.inc();
            return keep;
        }
        return shard.lru.front().block;
    }

    /** @return true when a nonzero budget was configured. */
    bool enabled() const { return capacity_ != 0; }

    /** @return the configured payload budget in bytes. */
    size_t capacityBytes() const { return capacity_; }

    /** @return counters summed over the shards (a racy snapshot —
     *  individual shards are consistent, the sum is advisory). */
    BlockCacheStats
    stats() const
    {
        BlockCacheStats out;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            out.hits += shard.hits;
            out.misses += shard.misses;
            out.insertions += shard.insertions;
            out.evictions += shard.evictions;
            out.bytes += shard.bytes;
            out.entries += shard.lru.size();
        }
        return out;
    }

  private:
    struct Entry
    {
        uint64_t key;
        Ptr block;
        size_t bytes;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::list<Entry> lru; // front = most recently used
        std::unordered_map<uint64_t, typename std::list<Entry>::iterator>
            map;
        size_t bytes = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
    };

    Shard &
    shardFor(uint64_t key)
    {
        // Multiplicative hash: consecutive frame keys spread across
        // shards instead of marching through one.
        uint64_t h = key * 0x9E3779B97F4A7C15ull;
        return shards_[(h >> 32) % shards_.size()];
    }

    size_t capacity_;
    size_t shard_capacity_;
    /** Aggregate payload bytes across shards, maintained under the
     *  shard locks; read racily to bound the keep-newest exception. */
    std::atomic<size_t> total_bytes_{0};
    std::vector<Shard> shards_;
};

} // namespace atc::core

#endif // ATC_ATC_BLOCK_CACHE_HPP_
