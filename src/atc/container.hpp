/**
 * @file
 * Compressed-trace containers.
 *
 * An ATC trace is a set of chunks plus an INFO stream (paper §6 and
 * Figure 8: a directory holding `1.bz2`, `2.bz2`, ... and `INFO.bz2`).
 * ChunkStore abstracts the storage so the codec logic is testable in
 * memory; DirectoryStore reproduces the on-disk layout.
 */

#ifndef ATC_ATC_CONTAINER_HPP_
#define ATC_ATC_CONTAINER_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/bytestream.hpp"
#include "util/mmap.hpp"

namespace atc::core {

/** Abstract storage for chunks and the INFO stream. */
class ChunkStore
{
  public:
    virtual ~ChunkStore() = default;

    /** Create chunk @p id for writing (ids are dense, from 0). */
    virtual std::unique_ptr<util::ByteSink> createChunk(uint32_t id) = 0;

    /** Open chunk @p id for reading. */
    virtual std::unique_ptr<util::ByteSource> openChunk(uint32_t id) = 0;

    /** Create the INFO stream for writing. */
    virtual std::unique_ptr<util::ByteSink> createInfo() = 0;

    /** Open the INFO stream for reading. */
    virtual std::unique_ptr<util::ByteSource> openInfo() = 0;

    /** @return total stored bytes (chunks + INFO), the paper's `du -b`
     *  accounting used for bits-per-address numbers. */
    virtual uint64_t totalBytes() const = 0;
};

/**
 * Directory-backed store, mirroring the original tool's layout:
 * `<dir>/<id+1>.<suffix>` per chunk and `<dir>/INFO.<suffix>`.
 */
class DirectoryStore : public ChunkStore
{
  public:
    /**
     * @param dir    directory path; created if absent
     * @param suffix file suffix, e.g. "bwc" (paper: "bz2")
     * @param io     read-side source policy; defaults to the
     *               process-wide mode set by the CLI `--io` flag
     */
    DirectoryStore(const std::string &dir, const std::string &suffix,
                   util::IoMode io = util::defaultIoMode());

    std::unique_ptr<util::ByteSink> createChunk(uint32_t id) override;
    std::unique_ptr<util::ByteSource> openChunk(uint32_t id) override;
    std::unique_ptr<util::ByteSink> createInfo() override;
    std::unique_ptr<util::ByteSource> openInfo() override;
    uint64_t totalBytes() const override;

    /** @return path of chunk @p id. */
    std::string chunkPath(uint32_t id) const;

    /** @return path of the INFO file. */
    std::string infoPath() const;

    /** @return the read-side source policy this store opens with. */
    util::IoMode ioMode() const { return io_; }

  private:
    std::string dir_;
    std::string suffix_;
    util::IoMode io_;
};

/** In-memory store for tests and size measurements. */
class MemoryStore : public ChunkStore
{
  public:
    std::unique_ptr<util::ByteSink> createChunk(uint32_t id) override;
    std::unique_ptr<util::ByteSource> openChunk(uint32_t id) override;
    std::unique_ptr<util::ByteSink> createInfo() override;
    std::unique_ptr<util::ByteSource> openInfo() override;
    uint64_t totalBytes() const override;

    /** @return number of chunks created. */
    size_t chunkCount() const { return chunks_.size(); }

    /** @return raw bytes of the INFO stream. */
    const std::vector<uint8_t> &infoBytes() const { return info_; }

    /** @return raw bytes of chunk @p id. */
    const std::vector<uint8_t> &chunkBytes(uint32_t id) const;

  private:
    std::map<uint32_t, std::vector<uint8_t>> chunks_;
    std::vector<uint8_t> info_;
};

} // namespace atc::core

#endif // ATC_ATC_CONTAINER_HPP_
