/**
 * @file
 * Sorted byte-histograms, interval distance, and byte translations
 * (paper §5.1).
 *
 * An interval of L addresses is characterized by 8 byte-histograms
 * h[j] (j = 0 is the least-significant byte, matching the paper's
 * A(k) = sum_j b[j](k) * 2^(8j)). Sorting each histogram in decreasing
 * order yields h'[j] and a permutation p[j] (stable: ties keep byte-
 * value order). The distance between intervals is
 *
 *   D(A,B) = max_j d(h'_A[j], h'_B[j]),
 *   d(hA, hB) = (1/L) * sum_i |hA(i) - hB(i)|,  in [0, 2].
 *
 * When interval B "looks like" chunk A (D < epsilon), B is replaced by
 * A transformed through the byte translations t[j] = p_B[j] ∘ p_A[j]⁻¹,
 * applied only on planes j whose *unsorted* histograms differ by more
 * than epsilon — this is the paper's fix for the myopic interval
 * problem.
 */

#ifndef ATC_ATC_HISTOGRAM_HPP_
#define ATC_ATC_HISTOGRAM_HPP_

#include <array>
#include <cstddef>
#include <cstdint>

namespace atc::core {

/** Permutation of byte values. */
using BytePermutation = std::array<uint8_t, 256>;

/** One histogram: occurrence count of each byte value. */
using ByteHistogram = std::array<uint32_t, 256>;

/** Raw per-plane histograms of one interval (plane 0 = LSB). */
struct IntervalHistograms
{
    uint64_t len = 0;
    std::array<ByteHistogram, 8> h{};
};

/** Compute the 8 byte-histograms of [addrs, addrs+n). */
IntervalHistograms computeHistograms(const uint64_t *addrs, size_t n);

/**
 * The stable sort permutation p of a histogram: p[i] is the byte value
 * with the i-th largest count, ties broken toward smaller byte values.
 */
BytePermutation sortPermutation(const ByteHistogram &h);

/**
 * L1 histogram distance normalized by interval lengths:
 * sum_i |a(i)/la - b(i)/lb|; equals the paper's d for la == lb == L.
 */
double histogramDistance(const ByteHistogram &a, uint64_t la,
                         const ByteHistogram &b, uint64_t lb);

/** Precomputed signature of a chunk or interval. */
struct IntervalSignature
{
    IntervalHistograms hist;
    /** Sorted histograms h'[j]. */
    std::array<ByteHistogram, 8> sorted{};
    /** Sort permutations p[j]. */
    std::array<BytePermutation, 8> perm{};

    /** Build sorted histograms and permutations from raw histograms. */
    static IntervalSignature from(IntervalHistograms hist);
};

/** D(A,B): max over planes of the sorted-histogram distance. */
double signatureDistance(const IntervalSignature &a,
                         const IntervalSignature &b);

/** Per-plane byte translation with an application mask. */
struct ByteTranslation
{
    /** Bit j set: translate plane j (LSB plane = bit 0). */
    uint8_t plane_mask = 0;
    /** Translation tables, valid for planes in the mask. */
    std::array<BytePermutation, 8> t{};

    /** Translate one address (identity outside the mask). */
    uint64_t
    apply(uint64_t addr) const
    {
        if (plane_mask == 0)
            return addr;
        uint64_t out = 0;
        for (int j = 0; j < 8; ++j) {
            uint64_t byte = (addr >> (8 * j)) & 0xFF;
            if (plane_mask & (1u << j))
                byte = t[j][byte];
            out |= byte << (8 * j);
        }
        return out;
    }
};

/**
 * Build the translation that makes chunk @p source imitate interval
 * @p target: t[j](p_src[j](i)) = p_tgt[j](i), with plane j flagged in
 * the mask only when the *unsorted* histograms of the plane differ by
 * more than @p epsilon (paper §5.1: translate only where necessary).
 */
ByteTranslation makeTranslation(const IntervalSignature &source,
                                const IntervalSignature &target,
                                double epsilon);

} // namespace atc::core

#endif // ATC_ATC_HISTOGRAM_HPP_
