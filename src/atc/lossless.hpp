/**
 * @file
 * Lossless address-stream compression (paper §4): transform (bytesort,
 * unshuffle, or none) followed by a byte-level codec.
 *
 * This is both ATC's lossless mode ('c' in the original tool) and the
 * per-chunk compressor of the lossy mode. The codec is addressed by a
 * registry spec (e.g. "bwc", "lzh", "bwc:block=900k") and constructed
 * through comp::CodecRegistry, so back ends stay pluggable.
 *
 * Streams end (container v2 and later) with a little-endian CRC-32
 * trailer of the raw (transformed, pre-codec) byte stream, written
 * after the codec terminator — and, in Seekable framing (v3), after
 * the frame index. The reader verifies it once the stream is drained,
 * so corruption is loud even under codecs without per-block checksums
 * ("store") and under truncation at frame boundaries. The
 * frame_format/crc_trailer knobs in LosslessParams select the layout;
 * container code derives them from the version via
 * core::applyContainerVersion().
 */

#ifndef ATC_ATC_LOSSLESS_HPP_
#define ATC_ATC_LOSSLESS_HPP_

#include <memory>
#include <string>

#include "atc/bytesort.hpp"
#include "compress/stream.hpp"

namespace atc::core {

/** Parameters of the transform + codec pipeline. */
struct LosslessParams
{
    /** Reversible transform (paper evaluates all three). */
    Transform transform = Transform::Bytesort;
    /** Bytesort buffer B in addresses (paper: 1M "small", 10M "big"). */
    size_t buffer_addrs = 1'000'000;
    /** Byte-level codec spec (see comp::CodecSpec). */
    std::string codec = "bwc";
    /** Codec block size; a `block=` spec parameter overrides this. */
    size_t codec_block = comp::kDefaultBlockSize;
    /** Stream framing: Seekable (container v3) records per-frame
     *  compressed lengths plus an end-of-stream frame index, enabling
     *  block-parallel decode; Legacy matches container v1/v2. Derived
     *  from the container version by applyContainerVersion(). */
    comp::FrameFormat frame_format = comp::FrameFormat::Seekable;
    /** Whether streams end with the CRC-32 trailer (v2 and later). */
    bool crc_trailer = true;
};

/** Streaming lossless compressor into a byte sink. */
class LosslessWriter
{
  public:
    /**
     * @param params pipeline parameters
     * @param out    destination (e.g. a chunk file)
     * @throws util::Error on a malformed or unknown codec spec
     */
    LosslessWriter(const LosslessParams &params, util::ByteSink &out);

    /** Compress a batch of addresses — the primary entry point. */
    void write(const uint64_t *addrs, size_t n);

    /** Compress one address. */
    void code(uint64_t addr) { write(&addr, 1); }

    /** Flush everything and write the CRC trailer; call exactly once. */
    void finish();

    /** @return addresses coded. */
    uint64_t count() const { return transform_->count(); }

  private:
    util::ByteSink &out_;
    std::shared_ptr<const comp::Codec> codec_;
    std::unique_ptr<comp::StreamCompressor> codec_stage_;
    std::unique_ptr<TransformEncoder> transform_;
    bool crc_trailer_ = true;
};

/** Streaming lossless decompressor from a byte source. */
class LosslessReader
{
  public:
    /**
     * @param params parameters used to write the stream (buffer size is
     *               not needed; frames are self-describing)
     * @param in     source (e.g. a chunk file)
     * @throws util::Error on a malformed or unknown codec spec
     */
    LosslessReader(const LosslessParams &params, util::ByteSource &in);

    /**
     * Decompress up to @p n addresses — the primary entry point.
     * At end of stream the stored CRC trailer is verified once.
     * @return addresses produced; 0 means end of stream
     * @throws util::Error on corrupt data or a CRC mismatch
     */
    size_t read(uint64_t *out, size_t n);

    /**
     * Decompress the next address.
     * @return false at end of stream
     */
    bool decode(uint64_t *out) { return read(out, 1) == 1; }

  private:
    void verifyTrailer();

    util::ByteSource &in_;
    std::shared_ptr<const comp::Codec> codec_;
    std::unique_ptr<comp::StreamDecompressor> codec_stage_;
    std::unique_ptr<TransformDecoder> transform_;
    bool crc_trailer_ = true;
    bool verified_ = false;
};

} // namespace atc::core

#endif // ATC_ATC_LOSSLESS_HPP_
