#include "atc/lossless.hpp"

namespace atc::core {

LosslessWriter::LosslessWriter(const LosslessParams &params,
                               util::ByteSink &out)
{
    codec_stage_ = std::make_unique<comp::StreamCompressor>(
        comp::codecByName(params.codec), out, params.codec_block);
    transform_ = std::make_unique<TransformEncoder>(
        params.transform, params.buffer_addrs, *codec_stage_);
}

void
LosslessWriter::code(uint64_t addr)
{
    transform_->code(addr);
}

void
LosslessWriter::finish()
{
    transform_->finish();
    codec_stage_->finish();
}

LosslessReader::LosslessReader(const LosslessParams &params,
                               util::ByteSource &in)
{
    codec_stage_ = std::make_unique<comp::StreamDecompressor>(
        comp::codecByName(params.codec), in);
    transform_ = std::make_unique<TransformDecoder>(params.transform,
                                                    *codec_stage_);
}

bool
LosslessReader::decode(uint64_t *out)
{
    return transform_->decode(out);
}

} // namespace atc::core
