#include "atc/lossless.hpp"

#include "compress/codec.hpp"

namespace atc::core {

LosslessWriter::LosslessWriter(const LosslessParams &params,
                               util::ByteSink &out)
    : out_(out), crc_trailer_(params.crc_trailer)
{
    comp::ConfiguredCodec cc = comp::makeCodec(params.codec);
    codec_ = cc.codec;
    codec_stage_ = std::make_unique<comp::StreamCompressor>(
        *codec_, out, cc.blockOr(params.codec_block),
        params.frame_format);
    transform_ = std::make_unique<TransformEncoder>(
        params.transform, params.buffer_addrs, *codec_stage_);
}

void
LosslessWriter::write(const uint64_t *addrs, size_t n)
{
    transform_->write(addrs, n);
}

void
LosslessWriter::finish()
{
    transform_->finish();
    codec_stage_->finish();
    // Integrity trailer (v2+): CRC-32 of the raw transformed byte
    // stream, after the codec terminator (and, in Seekable framing,
    // the frame index) so frame parsing is unchanged.
    if (crc_trailer_)
        util::writeLE<uint32_t>(out_, codec_stage_->crc());
}

LosslessReader::LosslessReader(const LosslessParams &params,
                               util::ByteSource &in)
    : in_(in), crc_trailer_(params.crc_trailer)
{
    comp::ConfiguredCodec cc = comp::makeCodec(params.codec);
    codec_ = cc.codec;
    codec_stage_ = std::make_unique<comp::StreamDecompressor>(
        *codec_, in, params.frame_format);
    transform_ = std::make_unique<TransformDecoder>(params.transform,
                                                    *codec_stage_);
}

void
LosslessReader::verifyTrailer()
{
    // The transform terminator must be the last raw bytes: draining the
    // codec stage past it both detects trailing garbage and consumes
    // the codec end-of-stream marker (plus the v3 frame index),
    // positioning in_ at the trailer.
    uint8_t extra;
    ATC_CHECK(codec_stage_->read(&extra, 1) == 0,
              "trailing data after the transform terminator");
    if (!crc_trailer_)
        return; // v1 streams end at the codec terminator
    uint8_t trailer[4];
    size_t got = 0;
    while (got < 4) {
        size_t r = in_.read(trailer + got, 4 - got);
        if (r == 0)
            break;
        got += r;
    }
    ATC_CHECK(got == 4, "chunk stream CRC trailer missing or truncated");
    uint32_t stored = static_cast<uint32_t>(trailer[0]) |
                      static_cast<uint32_t>(trailer[1]) << 8 |
                      static_cast<uint32_t>(trailer[2]) << 16 |
                      static_cast<uint32_t>(trailer[3]) << 24;
    ATC_CHECK(stored == codec_stage_->crc(),
              "chunk payload CRC mismatch (corrupt container)");
}

size_t
LosslessReader::read(uint64_t *out, size_t n)
{
    size_t got = transform_->read(out, n);
    if (got == 0 && n > 0 && !verified_) {
        verifyTrailer();
        verified_ = true;
    }
    return got;
}

} // namespace atc::core
