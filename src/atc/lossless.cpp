#include "atc/lossless.hpp"

#include "compress/codec.hpp"

namespace atc::core {

LosslessWriter::LosslessWriter(const LosslessParams &params,
                               util::ByteSink &out)
{
    comp::ConfiguredCodec cc = comp::makeCodec(params.codec);
    codec_ = cc.codec;
    codec_stage_ = std::make_unique<comp::StreamCompressor>(
        *codec_, out, cc.blockOr(params.codec_block));
    transform_ = std::make_unique<TransformEncoder>(
        params.transform, params.buffer_addrs, *codec_stage_);
}

void
LosslessWriter::write(const uint64_t *addrs, size_t n)
{
    transform_->write(addrs, n);
}

void
LosslessWriter::finish()
{
    transform_->finish();
    codec_stage_->finish();
}

LosslessReader::LosslessReader(const LosslessParams &params,
                               util::ByteSource &in)
{
    comp::ConfiguredCodec cc = comp::makeCodec(params.codec);
    codec_ = cc.codec;
    codec_stage_ = std::make_unique<comp::StreamDecompressor>(*codec_, in);
    transform_ = std::make_unique<TransformDecoder>(params.transform,
                                                    *codec_stage_);
}

size_t
LosslessReader::read(uint64_t *out, size_t n)
{
    return transform_->read(out, n);
}

} // namespace atc::core
