/**
 * @file
 * Bit-granular writer/reader on top of byte streams.
 *
 * Used by the Huffman coders. Bits are packed MSB-first within each
 * byte, which keeps canonical-Huffman codes comparable as integers.
 */

#ifndef ATC_UTIL_BITIO_HPP_
#define ATC_UTIL_BITIO_HPP_

#include <cstdint>
#include <vector>

#include "util/bytestream.hpp"
#include "util/status.hpp"

namespace atc::util {

/** MSB-first bit writer accumulating into a ByteSink. */
class BitWriter
{
  public:
    /** Write into @p sink, which must outlive the writer. */
    explicit BitWriter(ByteSink &sink) : sink_(sink) {}

    /** Append the low @p nbits bits of @p value, MSB of the field first. */
    void
    writeBits(uint32_t value, int nbits)
    {
        ATC_ASSERT(nbits >= 0 && nbits <= 32);
        for (int i = nbits - 1; i >= 0; --i) {
            acc_ = (acc_ << 1) | ((value >> i) & 1u);
            if (++fill_ == 8) {
                sink_.writeByte(static_cast<uint8_t>(acc_));
                acc_ = 0;
                fill_ = 0;
            }
        }
        bits_ += static_cast<uint64_t>(nbits);
    }

    /** Append a single bit. */
    void writeBit(uint32_t bit) { writeBits(bit & 1u, 1); }

    /** Pad with zero bits to the next byte boundary and flush. */
    void
    alignAndFlush()
    {
        if (fill_ > 0) {
            acc_ <<= (8 - fill_);
            sink_.writeByte(static_cast<uint8_t>(acc_));
            bits_ += static_cast<uint64_t>(8 - fill_);
            acc_ = 0;
            fill_ = 0;
        }
    }

    /** @return total bits written (including alignment padding). */
    uint64_t bitCount() const { return bits_; }

  private:
    ByteSink &sink_;
    uint32_t acc_ = 0;
    int fill_ = 0;
    uint64_t bits_ = 0;
};

/** MSB-first bit reader over a ByteSource. */
class BitReader
{
  public:
    /** Read from @p src, which must outlive the reader. */
    explicit BitReader(ByteSource &src) : src_(src) {}

    /** Read @p nbits bits, MSB of the field first; throws on truncation. */
    uint32_t
    readBits(int nbits)
    {
        ATC_ASSERT(nbits >= 0 && nbits <= 32);
        uint32_t value = 0;
        for (int i = 0; i < nbits; ++i)
            value = (value << 1) | readBit();
        return value;
    }

    /** Read a single bit; throws on truncation. */
    uint32_t
    readBit()
    {
        if (fill_ == 0) {
            src_.readExact(&acc_, 1);
            fill_ = 8;
        }
        --fill_;
        return (acc_ >> fill_) & 1u;
    }

    /** Discard bits up to the next byte boundary. */
    void align() { fill_ = 0; }

  private:
    ByteSource &src_;
    uint8_t acc_ = 0;
    int fill_ = 0;
};

} // namespace atc::util

#endif // ATC_UTIL_BITIO_HPP_
