/**
 * @file
 * Byte-stream abstractions used throughout the compression pipeline.
 *
 * ByteSink consumes bytes; ByteSource produces them. Memory- and
 * file-backed implementations are provided. These are the seams through
 * which codecs, the container format and the benches talk to storage,
 * mirroring the pipe-based design of the original ATC tool (which forked
 * an external bzip2 process).
 */

#ifndef ATC_UTIL_BYTESTREAM_HPP_
#define ATC_UTIL_BYTESTREAM_HPP_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace atc::util {

/** Abstract consumer of a byte stream. */
class ByteSink
{
  public:
    virtual ~ByteSink() = default;

    /** Append @p n bytes starting at @p data. */
    virtual void write(const uint8_t *data, size_t n) = 0;

    /** Append a single byte. */
    void writeByte(uint8_t b) { write(&b, 1); }

    /** Flush buffered state to the underlying medium (optional). */
    virtual void flush() {}
};

/** Abstract producer of a byte stream. */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;

    /**
     * Read up to @p n bytes into @p data.
     * @return number of bytes produced; 0 means end of stream.
     */
    virtual size_t read(uint8_t *data, size_t n) = 0;

    /**
     * Read exactly @p n bytes or throw Error on truncation.
     */
    void
    readExact(uint8_t *data, size_t n)
    {
        size_t got = 0;
        while (got < n) {
            size_t r = read(data + got, n - got);
            if (r == 0)
                raise("byte source truncated");
            got += r;
        }
    }

    /**
     * Discard exactly @p n bytes or throw Error on truncation. The
     * default reads into a scratch buffer; seekable sources (files,
     * memory) override it with O(1) repositioning — the primitive that
     * lets an index scan walk frame headers without touching payloads.
     */
    virtual void skip(uint64_t n);

    /**
     * Zero-copy fast path: borrow the next @p n bytes in place and
     * advance past them, or return nullptr when the source cannot
     * serve a contiguous borrowed span (the stdio default) — callers
     * then fall back to readExact() into their own buffer. A non-null
     * span stays valid for the lifetime of the backing storage (see
     * viewKeepalive()), not just until the next read.
     */
    virtual const uint8_t *view(size_t n)
    {
        (void)n;
        return nullptr;
    }

    /**
     * Ownership token pinning the storage behind view() spans. Holders
     * that outlive this source (pooled decode tasks) must retain it;
     * nullptr means the spans borrow storage this source never owned
     * (MemorySource) and the caller's existing lifetime contract
     * applies.
     */
    virtual std::shared_ptr<const void> viewKeepalive() const
    {
        return nullptr;
    }
};

/** Sink that appends to an in-memory vector. */
class VectorSink : public ByteSink
{
  public:
    /** Wrap @p out; the vector must outlive the sink. */
    explicit VectorSink(std::vector<uint8_t> &out) : out_(out) {}

    void
    write(const uint8_t *data, size_t n) override
    {
        out_.insert(out_.end(), data, data + n);
    }

  private:
    std::vector<uint8_t> &out_;
};

/** Source that reads from a borrowed memory span. */
class MemorySource : public ByteSource
{
  public:
    /** Wrap [data, data+n); the memory must outlive the source. */
    MemorySource(const uint8_t *data, size_t n) : data_(data), size_(n) {}

    /** Convenience constructor over a vector. */
    explicit MemorySource(const std::vector<uint8_t> &v)
        : data_(v.data()), size_(v.size())
    {}

    size_t
    read(uint8_t *data, size_t n) override
    {
        size_t avail = size_ - pos_;
        size_t take = n < avail ? n : avail;
        if (take != 0)
            std::memcpy(data, data_ + pos_, take);
        pos_ += take;
        return take;
    }

    void
    skip(uint64_t n) override
    {
        if (n > size_ - pos_)
            raise("byte source truncated");
        pos_ += static_cast<size_t>(n);
    }

    const uint8_t *
    view(size_t n) override
    {
        if (n > size_ - pos_)
            return nullptr;
        const uint8_t *p = data_ + pos_;
        pos_ += n;
        return p;
    }

    /** @return bytes not yet consumed. */
    size_t remaining() const { return size_ - pos_; }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

/** Sink writing to a file (buffered via stdio). */
class FileSink : public ByteSink
{
  public:
    /** Open @p path for writing; throws Error on failure. */
    explicit FileSink(const std::string &path);
    ~FileSink() override;

    FileSink(const FileSink &) = delete;
    FileSink &operator=(const FileSink &) = delete;

    void write(const uint8_t *data, size_t n) override;
    void flush() override;

    /** Close the file; further writes are invalid. */
    void close();

    /** @return total bytes written so far. */
    uint64_t bytesWritten() const { return written_; }

  private:
    std::FILE *fp_ = nullptr;
    uint64_t written_ = 0;
};

/** Source reading from a file (buffered via stdio). */
class FileSource : public ByteSource
{
  public:
    /** Open @p path for reading; throws Error on failure. */
    explicit FileSource(const std::string &path);
    ~FileSource() override;

    FileSource(const FileSource &) = delete;
    FileSource &operator=(const FileSource &) = delete;

    size_t read(uint8_t *data, size_t n) override;

    /** O(1) via fseek; throws Error when @p n runs past end of file. */
    void skip(uint64_t n) override;

  private:
    std::FILE *fp_ = nullptr;
    /** File size, computed lazily on the first skip(); -1 = unknown. */
    int64_t size_ = -1;
};

/** Counting sink that discards data but tracks its size. */
class CountingSink : public ByteSink
{
  public:
    void write(const uint8_t *, size_t n) override { count_ += n; }

    /** @return total bytes "written". */
    uint64_t count() const { return count_; }

  private:
    uint64_t count_ = 0;
};

/** Append a little-endian fixed-width integer to a sink. */
template <typename T>
void
writeLE(ByteSink &sink, T value)
{
    uint8_t buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i)
        buf[i] = static_cast<uint8_t>(value >> (8 * i));
    sink.write(buf, sizeof(T));
}

/** Read a little-endian fixed-width integer; throws on truncation. */
template <typename T>
T
readLE(ByteSource &src)
{
    uint8_t buf[sizeof(T)];
    src.readExact(buf, sizeof(T));
    T value = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
        value |= static_cast<T>(buf[i]) << (8 * i);
    return value;
}

/** @return the encoded size of @p value as an unsigned LEB128 varint. */
inline size_t
varintLen(uint64_t value)
{
    size_t n = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++n;
    }
    return n;
}

/** Append an unsigned LEB128 varint. */
void writeVarint(ByteSink &sink, uint64_t value);

/** Read an unsigned LEB128 varint; throws on truncation/overflow. */
uint64_t readVarint(ByteSource &src);

} // namespace atc::util

#endif // ATC_UTIL_BYTESTREAM_HPP_
