/**
 * @file
 * Memory-mapped file access: the zero-copy fast path under the
 * ByteSource seam.
 *
 * MappedFile is an RAII read-only mapping of a regular file; MmapSource
 * adapts one to the ByteSource interface, serving borrowed spans
 * through view() so frame decodes run straight off the page cache
 * instead of copying through stdio. openFileSource() is the policy
 * point: it tries to map and falls back to FileSource for anything
 * unmappable (pipes, stdin, special files, exotic filesystems), so
 * every consumer keeps working on every input.
 *
 * Borrowed spans stay valid for the mapping's lifetime, not the
 * source's position — pooled decoders that outlive the read loop pin
 * the mapping via viewKeepalive().
 */

#ifndef ATC_UTIL_MMAP_HPP_
#define ATC_UTIL_MMAP_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/bytestream.hpp"

namespace atc::util {

/** File-source selection policy (the CLI `--io` knob). */
enum class IoMode : uint8_t
{
    kMmap = 0, ///< map regular files, fall back to stdio (default)
    kStdio,    ///< always read through buffered stdio
};

/** Process-wide default consulted by DirectoryStore and the factory. */
IoMode defaultIoMode();

/** Set the process-wide default (CLI `--io` plumbing). */
void setDefaultIoMode(IoMode mode);

/** @return "mmap" or "stdio". */
const char *ioModeName(IoMode mode);

/** Parse "mmap"/"stdio" into @p out; false on anything else. */
bool parseIoMode(const std::string &text, IoMode &out);

/** Read-only memory mapping of one regular file. */
class MappedFile
{
  public:
    /**
     * Map @p path read-only. Returns nullptr when the file is not a
     * mappable regular file (missing, empty, a pipe/device, or the
     * platform lacks mmap) — callers fall back to FileSource.
     */
    static std::shared_ptr<const MappedFile> map(const std::string &path);

    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** @return start of the mapping. */
    const uint8_t *data() const { return data_; }

    /** @return mapped length in bytes. */
    size_t size() const { return size_; }

    /**
     * Borrow [off, off+len) of the mapping.
     * @return span start, or nullptr when the range is out of bounds
     */
    const uint8_t *
    view(uint64_t off, size_t len) const
    {
        if (off > size_ || len > size_ - off)
            return nullptr;
        return data_ + off;
    }

  private:
    MappedFile(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    const uint8_t *data_;
    size_t size_;
};

/** ByteSource over a shared MappedFile; view() serves borrowed spans. */
class MmapSource : public ByteSource
{
  public:
    explicit MmapSource(std::shared_ptr<const MappedFile> file)
        : file_(std::move(file))
    {}

    size_t read(uint8_t *data, size_t n) override;

    /** O(1); throws Error when @p n runs past the end (like FileSource). */
    void skip(uint64_t n) override;

    const uint8_t *view(size_t n) override;

    std::shared_ptr<const void>
    viewKeepalive() const override
    {
        return file_;
    }

    /** @return bytes not yet consumed. */
    size_t remaining() const { return file_->size() - pos_; }

  private:
    std::shared_ptr<const MappedFile> file_;
    size_t pos_ = 0;
};

/**
 * Open @p path for reading under @p mode: kMmap maps the file and
 * falls back to stdio when mapping fails (counted in
 * io.mmap_fallbacks); kStdio always returns a FileSource. Throws
 * Error when the file cannot be opened at all.
 */
std::unique_ptr<ByteSource> openFileSource(const std::string &path,
                                           IoMode mode);

/** As above, under the process-wide default mode. */
std::unique_ptr<ByteSource> openFileSource(const std::string &path);

} // namespace atc::util

#endif // ATC_UTIL_MMAP_HPP_
