#include "util/bitio.hpp"

// Implementation is header-only; this translation unit anchors the
// library target and keeps the header honest (self-contained).
namespace atc::util {
} // namespace atc::util
