#include "util/crc32.hpp"

#include <array>

namespace atc::util {

namespace {

std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

const std::array<uint32_t, 256> &
table()
{
    static const std::array<uint32_t, 256> t = makeTable();
    return t;
}

} // namespace

void
Crc32::update(const uint8_t *data, size_t n)
{
    const auto &t = table();
    uint32_t c = state_;
    for (size_t i = 0; i < n; ++i)
        c = t[(c ^ data[i]) & 0xFF] ^ (c >> 8);
    state_ = c;
}

uint32_t
crc32(const uint8_t *data, size_t n)
{
    Crc32 crc;
    crc.update(data, n);
    return crc.value();
}

} // namespace atc::util
