#include "util/status.hpp"

#include <cstdio>

namespace atc::util {

void
assertFail(const char *expr, const char *file, int line)
{
    std::fprintf(stderr, "ATC_ASSERT failed: %s at %s:%d\n",
                 expr, file, line);
    std::abort();
}

} // namespace atc::util
