/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, reflected) used for block integrity
 * checks in the BWC and LZH codec containers.
 */

#ifndef ATC_UTIL_CRC32_HPP_
#define ATC_UTIL_CRC32_HPP_

#include <cstddef>
#include <cstdint>

namespace atc::util {

/** Incremental CRC-32 accumulator. */
class Crc32
{
  public:
    /** Mix @p n bytes at @p data into the checksum. */
    void update(const uint8_t *data, size_t n);

    /** @return the finalized checksum for everything seen so far. */
    uint32_t value() const { return ~state_; }

    /** Reset to the empty-input state. */
    void reset() { state_ = 0xFFFFFFFFu; }

  private:
    uint32_t state_ = 0xFFFFFFFFu;
};

/** One-shot CRC-32 of [data, data+n). */
uint32_t crc32(const uint8_t *data, size_t n);

} // namespace atc::util

#endif // ATC_UTIL_CRC32_HPP_
