#include "util/mmap.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace atc::util {

namespace {

// Mapping accounting, alongside the stdio io.read_* family: opens and
// fallbacks tell which source mode actually served a run, view_bytes
// is the zero-copy traffic that never went through read().
struct MmapMetrics {
    obs::Counter &opens;
    obs::Counter &mapped_bytes;
    obs::Counter &fallbacks;
    obs::Counter &stdio_opens;
    obs::Counter &view_bytes;
};

MmapMetrics &
mmapMetrics()
{
    auto &r = obs::Registry::global();
    static MmapMetrics m{
        r.counter("io.mmap_opens"),   r.counter("io.mmap_bytes"),
        r.counter("io.mmap_fallbacks"), r.counter("io.stdio_opens"),
        r.counter("io.view_bytes"),
    };
    return m;
}

std::atomic<IoMode> g_default_io_mode{IoMode::kMmap};

} // namespace

IoMode
defaultIoMode()
{
    return g_default_io_mode.load(std::memory_order_relaxed);
}

void
setDefaultIoMode(IoMode mode)
{
    g_default_io_mode.store(mode, std::memory_order_relaxed);
}

const char *
ioModeName(IoMode mode)
{
    return mode == IoMode::kStdio ? "stdio" : "mmap";
}

bool
parseIoMode(const std::string &text, IoMode &out)
{
    if (text == "mmap") {
        out = IoMode::kMmap;
        return true;
    }
    if (text == "stdio") {
        out = IoMode::kStdio;
        return true;
    }
    return false;
}

std::shared_ptr<const MappedFile>
MappedFile::map(const std::string &path)
{
#if defined(_WIN32)
    (void)path;
    return nullptr;
#else
    int fd = -1;
    do {
        fd = ::open(path.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        return nullptr;

    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size <= 0) {
        ::close(fd);
        return nullptr;
    }
    size_t size = static_cast<size_t>(st.st_size);
    void *p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping holds its own reference to the file; the descriptor
    // is no longer needed either way.
    ::close(fd);
    if (p == MAP_FAILED)
        return nullptr;

    MmapMetrics &m = mmapMetrics();
    m.opens.inc();
    m.mapped_bytes.add(static_cast<int64_t>(size));
    return std::shared_ptr<const MappedFile>(
        new MappedFile(static_cast<const uint8_t *>(p), size));
#endif
}

MappedFile::~MappedFile()
{
#if !defined(_WIN32)
    if (data_ != nullptr)
        ::munmap(const_cast<uint8_t *>(data_), size_);
#endif
}

size_t
MmapSource::read(uint8_t *data, size_t n)
{
    size_t avail = file_->size() - pos_;
    size_t take = n < avail ? n : avail;
    if (take != 0)
        std::memcpy(data, file_->data() + pos_, take);
    pos_ += take;
    return take;
}

void
MmapSource::skip(uint64_t n)
{
    if (n > file_->size() - pos_)
        raise("byte source truncated");
    pos_ += static_cast<size_t>(n);
}

const uint8_t *
MmapSource::view(size_t n)
{
    const uint8_t *p = file_->view(pos_, n);
    if (p == nullptr)
        return nullptr;
    pos_ += n;
    mmapMetrics().view_bytes.add(static_cast<int64_t>(n));
    return p;
}

std::unique_ptr<ByteSource>
openFileSource(const std::string &path, IoMode mode)
{
    if (mode != IoMode::kStdio) {
        if (auto mapped = MappedFile::map(path))
            return std::make_unique<MmapSource>(std::move(mapped));
        mmapMetrics().fallbacks.inc();
    }
    mmapMetrics().stdio_opens.inc();
    return std::make_unique<FileSource>(path);
}

std::unique_ptr<ByteSource>
openFileSource(const std::string &path)
{
    return openFileSource(path, defaultIoMode());
}

} // namespace atc::util
