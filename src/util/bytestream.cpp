#include "util/bytestream.hpp"

namespace atc::util {

void
ByteSource::skip(uint64_t n)
{
    uint8_t scratch[16 * 1024];
    while (n > 0) {
        size_t want = n < sizeof(scratch)
                          ? static_cast<size_t>(n)
                          : sizeof(scratch);
        size_t got = read(scratch, want);
        if (got == 0)
            raise("byte source truncated");
        n -= got;
    }
}

FileSink::FileSink(const std::string &path)
{
    fp_ = std::fopen(path.c_str(), "wb");
    if (!fp_)
        raise("cannot open for writing: " + path);
}

FileSink::~FileSink()
{
    if (fp_)
        std::fclose(fp_);
}

void
FileSink::write(const uint8_t *data, size_t n)
{
    ATC_ASSERT(fp_ != nullptr);
    if (n > 0 && std::fwrite(data, 1, n, fp_) != n)
        raise("file write failed");
    written_ += n;
}

void
FileSink::flush()
{
    if (fp_)
        std::fflush(fp_);
}

void
FileSink::close()
{
    if (fp_) {
        std::fclose(fp_);
        fp_ = nullptr;
    }
}

FileSource::FileSource(const std::string &path)
{
    fp_ = std::fopen(path.c_str(), "rb");
    if (!fp_)
        raise("cannot open for reading: " + path);
}

FileSource::~FileSource()
{
    if (fp_)
        std::fclose(fp_);
}

size_t
FileSource::read(uint8_t *data, size_t n)
{
    ATC_ASSERT(fp_ != nullptr);
    return std::fread(data, 1, n, fp_);
}

void
FileSource::skip(uint64_t n)
{
    ATC_ASSERT(fp_ != nullptr);
    if (n == 0)
        return;
    // fseek happily lands past end-of-file; bound the target against
    // the file size so a skip past the end reports truncation exactly
    // like the read-and-discard default.
    if (size_ < 0) {
        long pos = std::ftell(fp_);
        if (pos >= 0 && std::fseek(fp_, 0, SEEK_END) == 0) {
            size_ = std::ftell(fp_);
            if (std::fseek(fp_, pos, SEEK_SET) != 0)
                raise("file seek failed");
        }
    }
    long pos = std::ftell(fp_);
    if (size_ < 0 || pos < 0) {
        // Unseekable stream (pipe): fall back to read-and-discard.
        ByteSource::skip(n);
        return;
    }
    if (n > static_cast<uint64_t>(size_ - pos))
        raise("byte source truncated");
    if (std::fseek(fp_, static_cast<long>(n), SEEK_CUR) != 0)
        raise("file seek failed");
}

void
writeVarint(ByteSink &sink, uint64_t value)
{
    while (value >= 0x80) {
        sink.writeByte(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
    }
    sink.writeByte(static_cast<uint8_t>(value));
}

uint64_t
readVarint(ByteSource &src)
{
    uint64_t value = 0;
    int shift = 0;
    for (;;) {
        uint8_t b;
        src.readExact(&b, 1);
        if (shift >= 63 && (b & 0x7E))
            raise("varint overflow");
        value |= static_cast<uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return value;
        shift += 7;
    }
}

} // namespace atc::util
