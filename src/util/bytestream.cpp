#include "util/bytestream.hpp"

#include <cerrno>
#include <limits>

#include "obs/metrics.hpp"

namespace atc::util {

namespace {

// File I/O accounting. Bytes and calls are always counted (one
// relaxed add); wall time only for transfers of at least 4 KiB — the
// varint reader issues millions of 1-byte reads and two clock queries
// per byte would dwarf the read itself.
constexpr size_t kIoTimeThreshold = 4096;

struct IoMetrics {
    obs::Counter &read_bytes;
    obs::Counter &read_calls;
    obs::Counter &read_us;
    obs::Counter &write_bytes;
    obs::Counter &write_calls;
    obs::Counter &write_us;
};

IoMetrics &
ioMetrics()
{
    auto &r = obs::Registry::global();
    static IoMetrics m{
        r.counter("io.read_bytes"),  r.counter("io.read_calls"),
        r.counter("io.read_us"),     r.counter("io.write_bytes"),
        r.counter("io.write_calls"), r.counter("io.write_us"),
    };
    return m;
}

/**
 * EINTR-safe fread: a signal delivered mid-read (a daemon handling
 * SIGTERM, a debugger attach) makes stdio return short with the error
 * flag set and errno == EINTR. Clear the flag and resume where the
 * partial transfer stopped; only genuine errors and end-of-file end
 * the loop.
 */
size_t
freadRetry(uint8_t *data, size_t n, std::FILE *fp)
{
    size_t done = 0;
    while (done < n) {
        size_t got = std::fread(data + done, 1, n - done, fp);
        done += got;
        if (done == n || std::feof(fp))
            break;
        if (std::ferror(fp)) {
            if (errno != EINTR)
                break;
            std::clearerr(fp);
        }
    }
    return done;
}

/** EINTR-safe fwrite; mirrors freadRetry. */
size_t
fwriteRetry(const uint8_t *data, size_t n, std::FILE *fp)
{
    size_t done = 0;
    while (done < n) {
        size_t put = std::fwrite(data + done, 1, n - done, fp);
        done += put;
        if (done == n)
            break;
        if (std::ferror(fp)) {
            if (errno != EINTR)
                break;
            std::clearerr(fp);
        }
    }
    return done;
}

/**
 * 64-bit-clean stdio positioning. fseek/ftell traffic in `long`, which
 * is 32 bits on Windows and 32-bit Unix — a skip or size probe beyond
 * 2 GiB silently truncated the offset. Route through the platform's
 * 64-bit variants, and step SEEK_CUR advances in bounded increments so
 * even a 32-bit off_t build cannot overflow a single relative seek.
 */
int64_t
tell64(std::FILE *fp)
{
#if defined(_WIN32)
    return _ftelli64(fp);
#else
    return static_cast<int64_t>(ftello(fp));
#endif
}

int
seekSet64(std::FILE *fp, int64_t pos)
{
#if defined(_WIN32)
    return _fseeki64(fp, pos, SEEK_SET);
#else
    return fseeko(fp, static_cast<off_t>(pos), SEEK_SET);
#endif
}

int
seekCur64(std::FILE *fp, uint64_t n)
{
#if defined(_WIN32)
    constexpr uint64_t kStep = std::numeric_limits<int64_t>::max();
#else
    constexpr uint64_t kStep =
        sizeof(off_t) >= 8
            ? static_cast<uint64_t>(std::numeric_limits<int64_t>::max())
            : static_cast<uint64_t>(std::numeric_limits<int32_t>::max());
#endif
    while (n > 0) {
        uint64_t step = n < kStep ? n : kStep;
#if defined(_WIN32)
        if (_fseeki64(fp, static_cast<int64_t>(step), SEEK_CUR) != 0)
            return -1;
#else
        if (fseeko(fp, static_cast<off_t>(step), SEEK_CUR) != 0)
            return -1;
#endif
        n -= step;
    }
    return 0;
}

} // namespace

void
ByteSource::skip(uint64_t n)
{
    uint8_t scratch[16 * 1024];
    while (n > 0) {
        size_t want = n < sizeof(scratch)
                          ? static_cast<size_t>(n)
                          : sizeof(scratch);
        size_t got = read(scratch, want);
        if (got == 0)
            raise("byte source truncated");
        n -= got;
    }
}

FileSink::FileSink(const std::string &path)
{
    fp_ = std::fopen(path.c_str(), "wb");
    if (!fp_)
        raise("cannot open for writing: " + path);
}

FileSink::~FileSink()
{
    if (fp_)
        std::fclose(fp_);
}

void
FileSink::write(const uint8_t *data, size_t n)
{
    ATC_ASSERT(fp_ != nullptr);
    IoMetrics &m = ioMetrics();
    if (n >= kIoTimeThreshold) {
        obs::StageTimer t(m.write_us);
        if (fwriteRetry(data, n, fp_) != n)
            raise("file write failed");
    } else if (n > 0 && fwriteRetry(data, n, fp_) != n) {
        raise("file write failed");
    }
    m.write_bytes.add(static_cast<int64_t>(n));
    m.write_calls.inc();
    written_ += n;
}

void
FileSink::flush()
{
    if (fp_)
        std::fflush(fp_);
}

void
FileSink::close()
{
    if (fp_) {
        std::fclose(fp_);
        fp_ = nullptr;
    }
}

FileSource::FileSource(const std::string &path)
{
    fp_ = std::fopen(path.c_str(), "rb");
    if (!fp_)
        raise("cannot open for reading: " + path);
}

FileSource::~FileSource()
{
    if (fp_)
        std::fclose(fp_);
}

size_t
FileSource::read(uint8_t *data, size_t n)
{
    ATC_ASSERT(fp_ != nullptr);
    IoMetrics &m = ioMetrics();
    size_t got;
    if (n >= kIoTimeThreshold) {
        obs::StageTimer t(m.read_us);
        got = freadRetry(data, n, fp_);
    } else {
        got = freadRetry(data, n, fp_);
    }
    m.read_bytes.add(static_cast<int64_t>(got));
    m.read_calls.inc();
    return got;
}

void
FileSource::skip(uint64_t n)
{
    ATC_ASSERT(fp_ != nullptr);
    if (n == 0)
        return;
    // Seeking happily lands past end-of-file; bound the target against
    // the file size so a skip past the end reports truncation exactly
    // like the read-and-discard default.
    if (size_ < 0) {
        int64_t pos = tell64(fp_);
        if (pos >= 0 && std::fseek(fp_, 0, SEEK_END) == 0) {
            size_ = tell64(fp_);
            if (seekSet64(fp_, pos) != 0)
                raise("file seek failed");
        }
    }
    int64_t pos = tell64(fp_);
    if (size_ < 0 || pos < 0) {
        // Unseekable stream (pipe): fall back to read-and-discard.
        ByteSource::skip(n);
        return;
    }
    if (n > static_cast<uint64_t>(size_ - pos))
        raise("byte source truncated");
    if (seekCur64(fp_, n) != 0)
        raise("file seek failed");
}

void
writeVarint(ByteSink &sink, uint64_t value)
{
    while (value >= 0x80) {
        sink.writeByte(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
    }
    sink.writeByte(static_cast<uint8_t>(value));
}

uint64_t
readVarint(ByteSource &src)
{
    uint64_t value = 0;
    int shift = 0;
    for (;;) {
        uint8_t b;
        src.readExact(&b, 1);
        if (shift >= 63 && (b & 0x7E))
            raise("varint overflow");
        value |= static_cast<uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return value;
        shift += 7;
    }
}

} // namespace atc::util
