#include "util/bytestream.hpp"

namespace atc::util {

FileSink::FileSink(const std::string &path)
{
    fp_ = std::fopen(path.c_str(), "wb");
    if (!fp_)
        raise("cannot open for writing: " + path);
}

FileSink::~FileSink()
{
    if (fp_)
        std::fclose(fp_);
}

void
FileSink::write(const uint8_t *data, size_t n)
{
    ATC_ASSERT(fp_ != nullptr);
    if (n > 0 && std::fwrite(data, 1, n, fp_) != n)
        raise("file write failed");
    written_ += n;
}

void
FileSink::flush()
{
    if (fp_)
        std::fflush(fp_);
}

void
FileSink::close()
{
    if (fp_) {
        std::fclose(fp_);
        fp_ = nullptr;
    }
}

FileSource::FileSource(const std::string &path)
{
    fp_ = std::fopen(path.c_str(), "rb");
    if (!fp_)
        raise("cannot open for reading: " + path);
}

FileSource::~FileSource()
{
    if (fp_)
        std::fclose(fp_);
}

size_t
FileSource::read(uint8_t *data, size_t n)
{
    ATC_ASSERT(fp_ != nullptr);
    return std::fread(data, 1, n, fp_);
}

void
writeVarint(ByteSink &sink, uint64_t value)
{
    while (value >= 0x80) {
        sink.writeByte(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
    }
    sink.writeByte(static_cast<uint8_t>(value));
}

uint64_t
readVarint(ByteSource &src)
{
    uint64_t value = 0;
    int shift = 0;
    for (;;) {
        uint8_t b;
        src.readExact(&b, 1);
        if (shift >= 63 && (b & 0x7E))
            raise("varint overflow");
        value |= static_cast<uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return value;
        shift += 7;
    }
}

} // namespace atc::util
