/**
 * @file
 * Error-handling primitives shared by all ATC libraries.
 *
 * Two regimes, per the gem5 fatal/panic distinction:
 *  - user-level failures (bad file, corrupt stream, invalid parameters)
 *    are reported through atc::util::Status / StatusOr or thrown as
 *    atc::util::Error, so callers can recover;
 *  - internal invariant violations use ATC_ASSERT and abort.
 */

#ifndef ATC_UTIL_STATUS_HPP_
#define ATC_UTIL_STATUS_HPP_

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace atc::util {

/** Exception type for user-level failures (I/O errors, corrupt data). */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * Lightweight success/error result for APIs that prefer explicit
 * status propagation over exceptions.
 */
class Status
{
  public:
    /** Construct a success status. */
    Status() = default;

    /** Construct an error status carrying @p msg. */
    static Status
    error(std::string msg)
    {
        Status s;
        s.ok_ = false;
        s.msg_ = std::move(msg);
        return s;
    }

    /** @return true if the operation succeeded. */
    bool ok() const { return ok_; }

    /** @return the error message (empty on success). */
    const std::string &message() const { return msg_; }

    /** Throw Error if this status is not ok. */
    void
    orThrow() const
    {
        if (!ok_)
            throw Error(msg_);
    }

  private:
    bool ok_ = true;
    std::string msg_;
};

/**
 * A Status or a value of type @p T: the result of an operation that can
 * fail for user-level reasons. Either ok() and value() is valid, or
 * !ok() and status() carries the error.
 */
template <typename T>
class StatusOr
{
  public:
    /** Construct from an error status (must not be ok). */
    StatusOr(Status status) : status_(std::move(status))
    {
        if (status_.ok())
            status_ = Status::error("StatusOr built from an ok status");
    }

    /** Construct from a value. */
    StatusOr(T value) : value_(std::move(value)) {}

    /** @return true if a value is held. */
    bool ok() const { return value_.has_value(); }

    /** @return the status (ok when a value is held). */
    const Status &status() const { return status_; }

    /** @return the held value; throws Error if this is an error. */
    T &
    value()
    {
        status_.orThrow();
        return *value_;
    }

    /** @return the held value; throws Error if this is an error. */
    const T &
    value() const
    {
        status_.orThrow();
        return *value_;
    }

    /**
     * Move the held value out; throws Error if this is an error.
     * Afterwards ok() is false — a second value()/take() fails loudly
     * instead of handing back a hollow moved-from object.
     */
    T
    take()
    {
        status_.orThrow();
        T out = std::move(*value_);
        value_.reset();
        status_ = Status::error("StatusOr value already taken");
        return out;
    }

  private:
    Status status_;
    std::optional<T> value_;
};

[[noreturn]] void assertFail(const char *expr, const char *file, int line);

/** Raise a user-level error with a formatted message. */
[[noreturn]] inline void
raise(const std::string &msg)
{
    throw Error(msg);
}

} // namespace atc::util

/** Internal invariant check; aborts on violation (a bug, not user error). */
#define ATC_ASSERT(expr)                                                     \
    do {                                                                     \
        if (!(expr))                                                         \
            ::atc::util::assertFail(#expr, __FILE__, __LINE__);              \
    } while (0)

/** User-level validation; throws atc::util::Error on violation. */
#define ATC_CHECK(expr, msg)                                                 \
    do {                                                                     \
        if (!(expr))                                                         \
            ::atc::util::raise(std::string("check failed: ") + (msg));       \
    } while (0)

#endif // ATC_UTIL_STATUS_HPP_
