/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * xoshiro256** — fast, high quality, and stable across platforms, so
 * the synthetic SPEC-like traces are reproducible bit-for-bit.
 */

#ifndef ATC_UTIL_RNG_HPP_
#define ATC_UTIL_RNG_HPP_

#include <cstdint>

namespace atc::util {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        uint64_t x = seed;
        for (auto &word : s_) {
            // splitmix64 step
            x += 0x9E3779B97F4A7C15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next 64 uniform random bits. */
    uint64_t
    next()
    {
        uint64_t result = rotl(s_[1] * 5, 7) * 9;
        uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** @return a uniform value in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire-style rejection-free-enough bounded draw. The tiny
        // modulo bias is irrelevant for workload synthesis.
        return next() % bound;
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
};

} // namespace atc::util

#endif // ATC_UTIL_RNG_HPP_
