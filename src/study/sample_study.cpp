#include "study/sample_study.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <map>

#include "atc/index.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/client.hpp"
#include "util/crc32.hpp"

namespace atc::study {
namespace {

using util::Status;
using util::StatusOr;

// Served windows ride single READ_RANGE / SEEK requests, so a window
// must fit the daemon's per-request ceiling (ServeOptions::
// max_range_records) and the SEEK count field.
constexpr uint64_t kMaxServedWindow = 1ull << 22;

struct StudyMetrics
{
    obs::Counter &windows;
    obs::Counter &measured_records;
    obs::Counter &fetched_records;
    obs::Counter &fetch_us;
    obs::Counter &sim_us;

    static StudyMetrics &
    get()
    {
        obs::Registry &r = obs::Registry::global();
        static StudyMetrics m{r.counter("study.windows"),
                              r.counter("study.measured_records"),
                              r.counter("study.fetched_records"),
                              r.counter("study.fetch_us"),
                              r.counter("study.sim_us")};
        return m;
    }
};

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<cache::StackSimulator>
makeSims(const StudyOptions &opt)
{
    std::vector<cache::StackSimulator> sims;
    sims.reserve(opt.sets.size());
    for (uint32_t s : opt.sets)
        sims.emplace_back(s, opt.max_ways);
    return sims;
}

Status
checkOptions(const StudyOptions &opt)
{
    if (opt.sets.empty())
        return Status::error("sample study: no cache set counts");
    if (opt.max_ways == 0)
        return Status::error("sample study: max_ways must be >= 1");
    for (uint32_t s : opt.sets)
        if (s == 0 || (s & (s - 1)) != 0)
            return Status::error(
                "sample study: set count must be a power of two");
    return Status();
}

/**
 * Feed one fetched window into fresh per-geometry simulators, fold
 * them into @p merged, and fill @p out's per-window statistics. The
 * warm-up prefix is everything but the last `measure` fetched records,
 * so a short fetch (defensive; plans are validated against the trace
 * length) shrinks the warm-up before it touches the measured body.
 */
void
simulateWindow(const std::vector<uint64_t> &records,
               const SampleWindow &window, const StudyOptions &opt,
               std::vector<cache::StackSimulator> &merged,
               WindowResult &out)
{
    StudyMetrics &sm = StudyMetrics::get();
    obs::StageTimer timer(sm.sim_us);

    out.crc = util::crc32(
        reinterpret_cast<const uint8_t *>(records.data()),
        records.size() * sizeof(uint64_t));

    // Extra leading records (early lossy landing) warm the cache too.
    uint64_t measured = std::min<uint64_t>(window.measure,
                                           records.size());
    size_t warm = records.size() - static_cast<size_t>(measured);

    std::vector<cache::StackSimulator> sims = makeSims(opt);
    for (cache::StackSimulator &sim : sims) {
        sim.setWarmup(true);
        for (size_t i = 0; i < warm; ++i)
            sim.access(records[i] >> opt.block_shift);
        sim.setWarmup(false);
        for (size_t i = warm; i < records.size(); ++i)
            sim.access(records[i] >> opt.block_shift);
    }

    out.miss_ratio.resize(sims.size());
    for (size_t s = 0; s < sims.size(); ++s) {
        out.miss_ratio[s].resize(opt.max_ways);
        for (uint32_t w = 1; w <= opt.max_ways; ++w)
            out.miss_ratio[s][w - 1] = sims[s].missRatio(w);
        merged[s].merge(sims[s]);
    }

    sm.windows.inc();
    sm.measured_records.add(static_cast<int64_t>(records.size() - warm));
    sm.fetched_records.add(static_cast<int64_t>(records.size()));
}

/** Windows [first, last) of the plan, handled by one local worker. */
Status
runLocalChunk(const core::AtcIndex &index, const SamplePlan &plan,
              const StudyOptions &opt, size_t first, size_t last,
              std::vector<cache::StackSimulator> &merged,
              std::vector<WindowResult> &out)
{
    std::unique_ptr<core::AtcCursor> cursor =
        index.cursor(core::CursorOptions{});
    std::vector<uint64_t> records;
    for (size_t i = first; i < last; ++i) {
        const SampleWindow &w = plan.windows()[i];
        WindowResult &res = out[i];
        res.window = w;
        records.clear();
        {
            StudyMetrics &sm = StudyMetrics::get();
            obs::StageTimer timer(sm.fetch_us);
            if (opt.fetch == Fetch::kRange) {
                res.actual_begin = w.begin;
                Status st = cursor->readRange(w.begin, w.end(), records);
                if (!st.ok())
                    return st;
            } else {
                Status st = cursor->seek(w.begin);
                if (!st.ok())
                    return st;
                res.actual_begin = cursor->tell();
                // A lossy seek lands on the containing interval
                // boundary: the whole window shifts earlier by the
                // landing distance (same record count), exactly what a
                // served SEEK returns — backends stay in parity.
                uint64_t n = w.length();
                records.resize(n);
                size_t got = 0;
                while (got < n) {
                    size_t r = cursor->read(records.data() + got,
                                            static_cast<size_t>(n) - got);
                    if (r == 0)
                        break;
                    got += r;
                }
                records.resize(got);
            }
        }
        simulateWindow(records, w, opt, merged, res);
    }
    return Status();
}

/**
 * Windows [first, last) of the plan, handled by one served worker on
 * its own connection with up to @p depth requests pipelined.
 */
Status
runServedChunk(const std::string &host, uint16_t port,
               const std::string &name, const SamplePlan &plan,
               const StudyOptions &opt, size_t first, size_t last,
               std::vector<cache::StackSimulator> &merged,
               std::vector<WindowResult> &out)
{
    auto client = serve::ServeClient::connect(host, port);
    if (!client.ok())
        return client.status();
    auto remote = client.value().open(name);
    if (!remote.ok())
        return remote.status();
    uint32_t handle = remote.value().handle;

    size_t depth = std::max<size_t>(1, opt.pipeline_depth);
    std::map<uint32_t, size_t> inflight;  // request id -> window index
    size_t next = first;
    StudyMetrics &sm = StudyMetrics::get();

    while (next < last || !inflight.empty()) {
        while (next < last && inflight.size() < depth) {
            const SampleWindow &w = plan.windows()[next];
            StatusOr<uint32_t> id =
                opt.fetch == Fetch::kRange
                    ? client.value().sendReadRange(handle, w.begin,
                                                   w.end())
                    : client.value().sendSeekRead(
                          handle, w.begin,
                          static_cast<uint32_t>(w.length()));
            if (!id.ok())
                return id.status();
            inflight.emplace(id.value(), next);
            ++next;
        }
        serve::ClientResponse resp;
        {
            obs::StageTimer timer(sm.fetch_us);
            Status st = client.value().receive(resp);
            if (!st.ok())
                return st;
        }
        auto it = inflight.find(resp.request_id);
        if (it == inflight.end())
            return Status::error(
                "sample study: served backend returned an unknown "
                "request id");
        size_t idx = it->second;
        inflight.erase(it);
        if (resp.status != serve::Wire::kOk)
            return Status::error("sample study: server error: " +
                                 resp.error);
        const SampleWindow &w = plan.windows()[idx];
        WindowResult &res = out[idx];
        res.window = w;
        res.actual_begin =
            opt.fetch == Fetch::kRange ? w.begin : resp.actual_pos;
        simulateWindow(resp.records, w, opt, merged, res);
    }
    client.value().closeHandle(handle);
    return Status();
}

/**
 * Split @p n windows into per-worker contiguous runs and execute
 * @p run(worker, first, last) on the pool (borrowed or owned).
 * Worker-local merged simulators land in @p worker_sims.
 */
template <typename Run>
Status
fanOut(size_t n, const StudyOptions &opt,
       std::vector<std::vector<cache::StackSimulator>> &worker_sims,
       Run run)
{
    parallel::ThreadPool *pool = opt.pool;
    std::unique_ptr<parallel::ThreadPool> owned;
    if (pool == nullptr) {
        owned = std::make_unique<parallel::ThreadPool>(
            parallel::resolveThreads(opt.threads));
        pool = owned.get();
    }
    size_t workers = std::min(n, std::max<size_t>(1, pool->size()));
    worker_sims.clear();
    for (size_t w = 0; w < workers; ++w)
        worker_sims.push_back(makeSims(opt));

    std::vector<std::future<Status>> futures;
    futures.reserve(workers);
    size_t per = n / workers;
    size_t extra = n % workers;
    size_t first = 0;
    for (size_t w = 0; w < workers; ++w) {
        size_t count = per + (w < extra ? 1 : 0);
        size_t last = first + count;
        futures.push_back(pool->async([&run, &worker_sims, w, first,
                                       last]() -> Status {
            return run(worker_sims[w], first, last);
        }));
        first = last;
    }

    Status result;
    for (std::future<Status> &f : futures) {
        Status st;
        try {
            st = f.get();
        } catch (const std::exception &e) {
            st = Status::error(std::string("sample study worker: ") +
                               e.what());
        }
        if (!st.ok() && result.ok())
            result = st;
    }
    return result;
}

/** Shared tail: fold worker simulators + plan metadata into a result. */
void
finishResult(const SamplePlan &plan, const StudyOptions &opt,
             std::vector<std::vector<cache::StackSimulator>> &worker_sims,
             StudyResult &result)
{
    result.plan = plan.describe();
    result.sets = opt.sets;
    result.max_ways = opt.max_ways;
    result.merged = makeSims(opt);
    for (std::vector<cache::StackSimulator> &sims : worker_sims)
        for (size_t s = 0; s < sims.size(); ++s)
            result.merged[s].merge(sims[s]);
    result.fetched_records = plan.fetchedRecords();
    result.measured_records = plan.measuredRecords();
}

} // namespace

double
StudyResult::missRatio(size_t sets_idx, uint32_t ways) const
{
    return merged[sets_idx].missRatio(ways);
}

Estimate
StudyResult::estimate(size_t sets_idx, uint32_t ways) const
{
    Estimate e;
    e.ratio = missRatio(sets_idx, ways);
    size_t n = windows.size();
    if (n < 2)
        return e;
    double mean = 0;
    for (const WindowResult &w : windows)
        mean += w.miss_ratio[sets_idx][ways - 1];
    mean /= static_cast<double>(n);
    double var = 0;
    for (const WindowResult &w : windows) {
        double d = w.miss_ratio[sets_idx][ways - 1] - mean;
        var += d * d;
    }
    var /= static_cast<double>(n - 1);
    e.ci95 = 1.96 * std::sqrt(var / static_cast<double>(n));
    return e;
}

uint32_t
StudyResult::windowsCrc() const
{
    util::Crc32 crc;
    for (const WindowResult &w : windows) {
        uint8_t bytes[4];
        std::memcpy(bytes, &w.crc, sizeof bytes);
        crc.update(bytes, sizeof bytes);
    }
    return crc.value();
}

uint32_t
StudyResult::histCrc() const
{
    util::Crc32 crc;
    auto mix = [&crc](uint64_t v) {
        uint8_t bytes[8];
        std::memcpy(bytes, &v, sizeof bytes);
        crc.update(bytes, sizeof bytes);
    };
    for (const cache::StackSimulator &sim : merged) {
        for (uint64_t h : sim.distanceHistogram())
            mix(h);
        mix(sim.coldMisses());
        mix(sim.accesses());
        mix(sim.warmupAccesses());
    }
    return crc.value();
}

double
ReferenceResult::missRatio(size_t sets_idx, uint32_t ways) const
{
    return merged[sets_idx].missRatio(ways);
}

StatusOr<StudyResult>
runSampleStudy(std::shared_ptr<const core::AtcIndex> index,
               const SamplePlan &plan, const StudyOptions &opt)
{
    Status ok = checkOptions(opt);
    if (!ok.ok())
        return ok;
    if (plan.windows().empty())
        return Status::error("sample study: the plan has no windows");
    if (index == nullptr)
        return Status::error("sample study: no index");

    StudyResult result;
    result.windows.resize(plan.windows().size());

    obs::Snapshot before = obs::Registry::global().snapshot();
    double t0 = nowSeconds();

    std::vector<std::vector<cache::StackSimulator>> worker_sims;
    Status st = fanOut(
        plan.windows().size(), opt, worker_sims,
        [&](std::vector<cache::StackSimulator> &sims, size_t first,
            size_t last) {
            return runLocalChunk(*index, plan, opt, first, last, sims,
                                 result.windows);
        });
    if (!st.ok())
        return st;

    result.seconds = nowSeconds() - t0;
    if (obs::enabled()) {
        obs::Snapshot delta =
            obs::Registry::global().snapshot().since(before);
        result.decoded_bytes = delta.value("codec.decode.raw_bytes");
        result.decoded_frames = delta.value("codec.decode.frames");
    }
    finishResult(plan, opt, worker_sims, result);
    return result;
}

StatusOr<StudyResult>
runSampleStudyServed(const std::string &host, uint16_t port,
                     const std::string &name, const SamplePlan &plan,
                     const StudyOptions &opt)
{
    Status ok = checkOptions(opt);
    if (!ok.ok())
        return ok;
    if (plan.windows().empty())
        return Status::error("sample study: the plan has no windows");
    for (const SampleWindow &w : plan.windows())
        if (w.length() > kMaxServedWindow)
            return Status::error(
                "sample study: window of " +
                std::to_string(w.length()) +
                " records exceeds the served per-request ceiling (" +
                std::to_string(kMaxServedWindow) +
                "); use shorter windows");

    // Control connection: METRICS deltas bracket the worker traffic.
    auto control = serve::ServeClient::connect(host, port);
    if (!control.ok())
        return control.status();
    auto metrics_before = control.value().metricsText();

    StudyResult result;
    result.windows.resize(plan.windows().size());
    double t0 = nowSeconds();

    std::vector<std::vector<cache::StackSimulator>> worker_sims;
    Status st = fanOut(
        plan.windows().size(), opt, worker_sims,
        [&](std::vector<cache::StackSimulator> &sims, size_t first,
            size_t last) {
            return runServedChunk(host, port, name, plan, opt, first,
                                  last, sims, result.windows);
        });
    if (!st.ok())
        return st;

    result.seconds = nowSeconds() - t0;
    auto metrics_after = control.value().metricsText();
    if (metrics_before.ok() && metrics_after.ok()) {
        std::map<std::string, int64_t> m0, m1;
        if (obs::parseMetricsText(metrics_before.value(), m0) &&
            obs::parseMetricsText(metrics_after.value(), m1) &&
            m1.count("codec.decode.raw_bytes") != 0) {
            auto delta = [&m0, &m1](const char *key) {
                auto it1 = m1.find(key);
                if (it1 == m1.end())
                    return int64_t{0};
                auto it0 = m0.find(key);
                return it1->second -
                       (it0 == m0.end() ? 0 : it0->second);
            };
            result.decoded_bytes = delta("codec.decode.raw_bytes");
            result.decoded_frames = delta("codec.decode.frames");
        }
    }
    finishResult(plan, opt, worker_sims, result);
    return result;
}

StatusOr<ReferenceResult>
runFullReference(std::shared_ptr<const core::AtcIndex> index,
                 const StudyOptions &opt)
{
    Status ok = checkOptions(opt);
    if (!ok.ok())
        return ok;
    if (index == nullptr)
        return Status::error("sample study: no index");

    ReferenceResult result;
    result.sets = opt.sets;
    result.max_ways = opt.max_ways;
    result.merged = makeSims(opt);
    result.records = index->size();

    obs::Snapshot before = obs::Registry::global().snapshot();
    double t0 = nowSeconds();

    std::unique_ptr<core::AtcCursor> cursor =
        index->cursor(core::CursorOptions{});
    std::vector<uint64_t> buf(1u << 16);
    for (;;) {
        size_t got = cursor->read(buf.data(), buf.size());
        if (got == 0)
            break;
        for (cache::StackSimulator &sim : result.merged)
            for (size_t i = 0; i < got; ++i)
                sim.access(buf[i] >> opt.block_shift);
    }

    result.seconds = nowSeconds() - t0;
    if (obs::enabled()) {
        obs::Snapshot delta =
            obs::Registry::global().snapshot().since(before);
        result.decoded_bytes = delta.value("codec.decode.raw_bytes");
        result.decoded_frames = delta.value("codec.decode.frames");
    }
    return result;
}

double
worstAbsError(const StudyResult &sampled,
              const ReferenceResult &reference)
{
    double worst = 0;
    for (size_t s = 0; s < sampled.sets.size(); ++s)
        for (uint32_t w = 1; w <= sampled.max_ways; ++w)
            worst = std::max(
                worst, std::fabs(sampled.missRatio(s, w) -
                                 reference.missRatio(s, w)));
    return worst;
}

} // namespace atc::study
