#include "study/sample_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "compress/codec.hpp"
#include "util/rng.hpp"

namespace atc::study {
namespace {

using util::Status;
using util::StatusOr;

std::string
numString(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

Status
checkKeys(const comp::CodecSpec &spec,
          std::initializer_list<const char *> known)
{
    for (const auto &[key, value] : spec.params) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            return Status::error("sample plan '" + spec.name +
                                 "': unknown parameter '" + key + "'");
    }
    return Status();
}

/** Parse one '+'-separated start value with optional k/m/g suffix. */
StatusOr<uint64_t>
parseStart(const std::string &text)
{
    if (text.empty())
        return Status::error("sample plan: empty window start");
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    uint64_t mult = 1;
    if (end == text.c_str())
        return Status::error("sample plan: bad window start '" + text +
                             "'");
    if (*end) {
        switch (*end) {
          case 'k': case 'K': mult = 1ull << 10; break;
          case 'm': case 'M': mult = 1ull << 20; break;
          case 'g': case 'G': mult = 1ull << 30; break;
          default:
            return Status::error("sample plan: bad window start '" +
                                 text + "'");
        }
        if (end[1] != '\0')
            return Status::error("sample plan: bad window start '" +
                                 text + "'");
    }
    return static_cast<uint64_t>(v) * mult;
}

struct CommonParams
{
    uint64_t windows = 32;
    uint64_t len = 65536;
    uint64_t warmup = 0;
    bool warmup_explicit = false;
};

StatusOr<CommonParams>
commonParams(const comp::CodecSpec &spec)
{
    CommonParams p;
    auto windows = spec.sizeParam("windows", 32);
    auto len = spec.sizeParam("len", 65536);
    for (const auto *q : {&windows, &len})
        if (!q->ok())
            return q->status();
    p.windows = windows.value();
    p.len = len.value();
    // warmup=0 is legal (no warm-up), so sizeParam's zero-rejection
    // cannot be used directly; probe presence first.
    if (const std::string *w = spec.find("warmup")) {
        p.warmup_explicit = true;
        if (*w == "0") {
            p.warmup = 0;
        } else {
            auto warmup = spec.sizeParam("warmup", 0);
            if (!warmup.ok())
                return warmup.status();
            p.warmup = warmup.value();
        }
    } else {
        p.warmup = p.len / 8;
    }
    if (p.windows == 0)
        return Status::error("sample plan: windows must be >= 1");
    if (p.len == 0)
        return Status::error("sample plan: len must be >= 1");
    return p;
}

} // namespace

StatusOr<SamplePlan>
SamplePlan::build(const std::string &spec_string, uint64_t trace_records)
{
    auto parsed = comp::CodecSpec::parse(spec_string);
    if (!parsed.ok())
        return parsed.status();
    const comp::CodecSpec &spec = parsed.value();

    SamplePlan plan;

    if (spec.name == "systematic" || spec.name == "uniform") {
        Status keys = checkKeys(
            spec, spec.name == "uniform"
                      ? std::initializer_list<const char *>{
                            "windows", "len", "warmup", "seed"}
                      : std::initializer_list<const char *>{
                            "windows", "len", "warmup"});
        if (!keys.ok())
            return keys;
        auto common = commonParams(spec);
        if (!common.ok())
            return common.status();
        const CommonParams &p = common.value();
        uint64_t wlen = p.warmup + p.len;
        if (wlen > trace_records)
            return Status::error(
                "sample plan: window length " + numString(wlen) +
                " (warmup+len) exceeds the trace (" +
                numString(trace_records) + " records)");

        if (spec.name == "systematic") {
            if (p.windows * wlen > trace_records)
                return Status::error(
                    "sample plan: " + numString(p.windows) +
                    " systematic windows of " + numString(wlen) +
                    " records cover more than the trace (" +
                    numString(trace_records) + " records)");
            uint64_t stride = trace_records / p.windows;
            for (uint64_t i = 0; i < p.windows; ++i)
                plan.windows_.push_back(
                    {i * stride, p.warmup, p.len});
            plan.spec_ = "systematic:windows=" + numString(p.windows) +
                         ",len=" + numString(p.len) +
                         ",warmup=" + numString(p.warmup);
        } else {
            uint64_t seed = 1;
            if (const std::string *s = spec.find("seed")) {
                auto v = parseStart(*s);
                if (!v.ok())
                    return v.status();
                seed = v.value();
            }
            util::Rng rng(seed ^ 0x5a17b3d5c001f00dull);
            std::vector<uint64_t> starts(p.windows);
            for (uint64_t &s : starts)
                s = rng.below(trace_records - wlen + 1);
            std::sort(starts.begin(), starts.end());
            for (uint64_t s : starts)
                plan.windows_.push_back({s, p.warmup, p.len});
            plan.spec_ = "uniform:windows=" + numString(p.windows) +
                         ",len=" + numString(p.len) +
                         ",warmup=" + numString(p.warmup) +
                         ",seed=" + numString(seed);
        }
        return plan;
    }

    if (spec.name == "explicit") {
        Status keys = checkKeys(spec, {"at", "len", "warmup"});
        if (!keys.ok())
            return keys;
        auto common = commonParams(spec);
        if (!common.ok())
            return common.status();
        const CommonParams &p = common.value();
        uint64_t wlen = p.warmup + p.len;
        const std::string *at = spec.find("at");
        if (!at || at->empty())
            return Status::error(
                "sample plan: explicit needs at=START[+START...]");
        std::vector<uint64_t> starts;
        size_t pos = 0;
        while (pos <= at->size()) {
            size_t plus = at->find('+', pos);
            if (plus == std::string::npos)
                plus = at->size();
            auto v = parseStart(at->substr(pos, plus - pos));
            if (!v.ok())
                return v.status();
            starts.push_back(v.value());
            pos = plus + 1;
        }
        std::string canonical_at;
        for (uint64_t s : starts) {
            if (s + wlen > trace_records)
                return Status::error(
                    "sample plan: window at " + numString(s) +
                    " runs past the trace (" +
                    numString(trace_records) + " records)");
            plan.windows_.push_back({s, p.warmup, p.len});
            if (!canonical_at.empty())
                canonical_at += '+';
            canonical_at += numString(s);
        }
        plan.spec_ = "explicit:at=" + canonical_at +
                     ",len=" + numString(p.len) +
                     ",warmup=" + numString(p.warmup);
        return plan;
    }

    return Status::error("unknown sample plan '" + spec.name +
                         "' (known: systematic, uniform, explicit)");
}

uint64_t
SamplePlan::measuredRecords() const
{
    uint64_t total = 0;
    for (const SampleWindow &w : windows_)
        total += w.measure;
    return total;
}

uint64_t
SamplePlan::fetchedRecords() const
{
    uint64_t total = 0;
    for (const SampleWindow &w : windows_)
        total += w.length();
    return total;
}

} // namespace atc::study
