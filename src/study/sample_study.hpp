/**
 * @file
 * Sampling cache-simulation engine over seekable compressed traces —
 * the paper's §7 payoff: estimate whole-trace LRU miss ratios from
 * many scattered windows without decoding the trace in between.
 *
 * A SampleStudy fans the windows of a SamplePlan out on a ThreadPool.
 * Each worker drives its own window fetcher:
 *
 *  - local backend: a private core::AtcCursor over one shared
 *    AtcIndex (and therefore one shared decoded-block cache) —
 *    record-exact readRange() per window, or seek+read when
 *    StudyOptions::fetch is kSeek;
 *  - served backend: its own serve::ServeClient connection to an
 *    atcserved daemon, issuing up to pipeline_depth pipelined
 *    READ_RANGE (or SEEK) requests so window fetches overlap the
 *    network round trip.
 *
 * Every window feeds one cache::StackSimulator per requested set
 * count: the warm-up prefix with statistics suppressed
 * (StackSimulator::setWarmup), the measured body recorded. Per-window
 * simulators are merged exactly (StackSimulator::merge) into
 * whole-trace estimates, per-window miss ratios kept for the
 * per-geometry confidence intervals, and the engine reports how many
 * compressed-trace bytes were actually decoded — obs counter deltas
 * (codec.decode.raw_bytes / codec.decode.frames) locally, METRICS-op
 * deltas against the daemon remotely — so "sampling decodes a
 * fraction of the trace" is measured, not assumed.
 *
 * Estimate semantics: the merged (access-weighted) miss ratio is the
 * point estimate; the 95% confidence interval treats per-window miss
 * ratios as i.i.d. samples (mean +- 1.96 * stderr). Windows of a
 * systematic plan are equal-sized, so the window mean and the merged
 * ratio coincide there; CIs on overlapping uniform windows are
 * approximate. See docs/sampling.md.
 *
 * Thread-safety: run* calls are self-contained; the shared AtcIndex
 * is immutable and its BlockCache internally synchronized, cursors
 * and ServeClients are per-worker. Decoded-byte attribution reads
 * process-global counters, so concurrent unrelated decode activity in
 * the same process (or against the same daemon) inflates the numbers.
 */

#ifndef ATC_STUDY_SAMPLE_STUDY_HPP_
#define ATC_STUDY_SAMPLE_STUDY_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/stack_sim.hpp"
#include "study/sample_plan.hpp"
#include "util/status.hpp"

namespace atc::core {
class AtcIndex;
} // namespace atc::core

namespace atc::parallel {
class ThreadPool;
} // namespace atc::parallel

namespace atc::study {

/** How a worker turns a SampleWindow into records. */
enum class Fetch {
    /** readRange(): record-exact in every mode (lossy intervals are
     *  sliced). The default. */
    kRange,
    /** seek(begin) + read(length): cheaper on lossy containers but
     *  lands on the containing interval boundary, shifting the window
     *  earlier — the quantified approximation of docs/sampling.md. */
    kSeek,
};

/** Knobs of a sampling study. */
struct StudyOptions
{
    /** Cache set counts to simulate (each a power of two); one
     *  StackSimulator per entry covers associativities 1..max_ways. */
    std::vector<uint32_t> sets = {64, 256, 1024};
    uint32_t max_ways = 16;

    /** Address-to-block shift (64-byte lines by default). */
    uint32_t block_shift = 6;

    /** Worker threads when no pool is borrowed; 0 = hardware. */
    size_t threads = 0;

    /** Borrowed pool (must outlive the call); overrides threads. */
    parallel::ThreadPool *pool = nullptr;

    /** Served backend: window fetches in flight per worker. */
    size_t pipeline_depth = 4;

    Fetch fetch = Fetch::kRange;
};

/** One window's outcome. */
struct WindowResult
{
    SampleWindow window;
    /** Where the fetch actually started: window.begin under kRange;
     *  under kSeek on a lossy container, the containing interval
     *  boundary at or before it. */
    uint64_t actual_begin = 0;
    /** CRC-32 of the fetched record payload — the backend-parity
     *  audit hook (local and served fetches of one window match). */
    uint32_t crc = 0;
    /** miss_ratio[sets_idx][w-1] = this window's w-way miss ratio. */
    std::vector<std::vector<double>> miss_ratio;
};

/** Point estimate + 95% confidence half-width for one geometry. */
struct Estimate
{
    double ratio = 0;
    double ci95 = 0;
};

/** Everything a sampling run produced. */
struct StudyResult
{
    std::string plan;            ///< canonical plan spec
    std::vector<uint32_t> sets;  ///< simulated set counts
    uint32_t max_ways = 0;

    /** merged[sets_idx]: exact union of the per-window simulators. */
    std::vector<cache::StackSimulator> merged;
    /** Per window, in plan order (deterministic across thread counts
     *  and backends). */
    std::vector<WindowResult> windows;

    uint64_t measured_records = 0;
    uint64_t fetched_records = 0;
    double seconds = 0;

    /** Compressed-trace bytes actually decoded to serve the windows
     *  (obs delta of codec.decode.raw_bytes); -1 when unattributable
     *  (observability off). Frames likewise. */
    int64_t decoded_bytes = -1;
    int64_t decoded_frames = -1;

    /** Merged (access-weighted) miss ratio. */
    double missRatio(size_t sets_idx, uint32_t ways) const;

    /** Merged ratio + 95% CI from the per-window spread. */
    Estimate estimate(size_t sets_idx, uint32_t ways) const;

    /** Order-stable CRC over every window's payload CRC — one number
     *  that differs iff any window's records differ. */
    uint32_t windowsCrc() const;

    /** CRC over the merged stack-distance histograms and counters —
     *  one number that differs iff any merged statistic differs. */
    uint32_t histCrc() const;
};

/** A full-trace reference pass over the same simulators. */
struct ReferenceResult
{
    std::vector<uint32_t> sets;
    uint32_t max_ways = 0;
    std::vector<cache::StackSimulator> merged;
    uint64_t records = 0;
    double seconds = 0;
    int64_t decoded_bytes = -1;
    int64_t decoded_frames = -1;

    double missRatio(size_t sets_idx, uint32_t ways) const;
};

/**
 * Run the plan against a local container through @p index. Windows
 * are distributed over the workers in contiguous runs; results are
 * deterministic for a given (container, plan, options) regardless of
 * thread count.
 */
util::StatusOr<StudyResult> runSampleStudy(
    std::shared_ptr<const core::AtcIndex> index, const SamplePlan &plan,
    const StudyOptions &opt);

/**
 * Run the plan against an atcserved daemon at @p host : @p port,
 * container @p name. One connection per worker plus a control
 * connection for the METRICS deltas; requests are pipelined
 * pipeline_depth deep. Records, merged statistics, and CRCs are
 * identical to the local backend over the same container.
 */
util::StatusOr<StudyResult> runSampleStudyServed(
    const std::string &host, uint16_t port, const std::string &name,
    const SamplePlan &plan, const StudyOptions &opt);

/** Simulate the whole trace once — the accuracy reference. */
util::StatusOr<ReferenceResult> runFullReference(
    std::shared_ptr<const core::AtcIndex> index, const StudyOptions &opt);

/**
 * Largest absolute sampled-vs-reference miss-ratio difference across
 * every (sets, ways) geometry — the headline error metric.
 */
double worstAbsError(const StudyResult &sampled,
                     const ReferenceResult &reference);

} // namespace atc::study

#endif // ATC_STUDY_SAMPLE_STUDY_HPP_
