/**
 * @file
 * Sampling plans for scattered-window cache simulation.
 *
 * A SamplePlan turns a spec string into a list of SampleWindows over a
 * trace of known length. Each window is a contiguous record range
 * split into a warm-up prefix (fed to the simulator with statistics
 * suppressed, so the cache state is realistic when measurement
 * starts) and a measured body. The spec grammar is the codec-spec
 * grammar (`name:key=value,...`, k/m/g binary suffixes on sizes):
 *
 *  - systematic:windows=W,len=L,warmup=U
 *      W windows of U+L records at the start of W equal strides —
 *      the SMARTS-style periodic design. Requires W*(U+L) <= trace.
 *  - uniform:windows=W,len=L,warmup=U,seed=S
 *      W window starts drawn uniformly (deterministic in S), sorted
 *      ascending for seek locality; windows may overlap.
 *  - explicit:at=A+B+C,len=L,warmup=U
 *      caller-chosen starts, '+'-separated (each may carry a k/m/g
 *      suffix).
 *
 * Defaults: windows=32, len=65536, warmup=len/8, seed=1. describe()
 * returns the canonical spec with every parameter explicit, and
 * build(describe()) reproduces the identical plan.
 */

#ifndef ATC_STUDY_SAMPLE_PLAN_HPP_
#define ATC_STUDY_SAMPLE_PLAN_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace atc::study {

/** One contiguous sampling window: warm-up prefix + measured body. */
struct SampleWindow
{
    uint64_t begin = 0;   ///< first fetched record (warm-up start)
    uint64_t warmup = 0;  ///< records fed with statistics suppressed
    uint64_t measure = 0; ///< records counted into the estimate

    /** @return one past the last record the window touches. */
    uint64_t end() const { return begin + warmup + measure; }

    /** @return records the window fetches (warm-up + measured). */
    uint64_t length() const { return warmup + measure; }
};

/** An immutable window list built from a spec; see the file comment. */
class SamplePlan
{
  public:
    /**
     * Build a plan over a trace of @p trace_records records.
     * Malformed specs, unknown families/keys, and plans that do not
     * fit the trace come back as an error status naming the offender.
     */
    static util::StatusOr<SamplePlan> build(const std::string &spec,
                                            uint64_t trace_records);

    /** @return the windows, ascending by begin (uniform plans sorted). */
    const std::vector<SampleWindow> &windows() const { return windows_; }

    /** @return the canonical spec (build(describe(), N) == *this). */
    const std::string &describe() const { return spec_; }

    /** @return total measured records across windows. */
    uint64_t measuredRecords() const;

    /** @return total fetched records (measured + warm-up). */
    uint64_t fetchedRecords() const;

  private:
    std::string spec_;
    std::vector<SampleWindow> windows_;
};

} // namespace atc::study

#endif // ATC_STUDY_SAMPLE_PLAN_HPP_
